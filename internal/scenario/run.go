package scenario

import (
	"fmt"

	"basrpt/internal/core"
	"basrpt/internal/runner"
	"basrpt/internal/sched"
)

// Options are the runtime knobs of one execution — everything here is
// explicitly OUTSIDE the determinism contract's inputs: findings bytes
// must not depend on any Options field except through forbidden misuse
// (there is none: Parallel only changes scheduling, OnProgress only
// observes).
type Options struct {
	// Parallel is the worker count (0 = GOMAXPROCS). The findings are
	// byte-identical for any value.
	Parallel int
	// OnProgress, when non-nil, receives per-unit lifecycle callbacks
	// (start/resume/done/failed phases) for live output. Callback order
	// is nondeterministic — display and ops endpoints only.
	OnProgress func(runner.Progress)
}

// Tasks builds the runner tasks of the spec's grid in cell order
// (scheduler-major, load-minor). Each task constructs its entire
// simulation inside Run, so tasks are safe to fan across workers.
func (s *Spec) Tasks() []runner.Task {
	var tasks []runner.Task
	for _, sc := range s.schedulerCells() {
		sc := sc
		for _, load := range s.Loads {
			load := load
			tasks = append(tasks, runner.Task{
				Name: s.cellName(sc, load),
				Run: func(seed uint64) (runner.Sample, error) {
					cell := core.Cell{
						Scale: core.Scale{
							Racks:        s.Topology.Racks,
							HostsPerRack: s.Topology.HostsPerRack,
							Duration:     s.DurationS,
							Seed:         seed,
						},
						Scheduler: sc.Name,
						Options: sched.Options{
							V:          sc.V,
							Threshold:  sc.Threshold,
							NoiseLevel: sc.NoiseLevel,
							Rounds:     sc.Rounds,
							MaxPorts:   sc.MaxPorts,
						},
						Load:          load,
						QueryFraction: s.Workload.QueryByteFraction,
					}
					if s.Faults != nil {
						cell.Faults = &core.CellFaults{
							LinkFaults: s.Faults.LinkFaults,
							Outages:    s.Faults.Outages,
							Seed:       s.Faults.Seed,
						}
					}
					return core.RunCell(cell)
				},
			})
		}
	}
	return tasks
}

// Execute runs the scenario's full grid across the worker pool and folds
// the aggregate into findings. A failing cell fails the whole execution:
// scenario runs back regression gates, so partial results are worthless
// there — rerun the named seed single-cell to debug.
func Execute(spec *Spec, opt Options) (*Findings, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	agg, err := runner.Run(runner.Config{
		Seeds:      spec.Seeds.Count,
		Parallel:   opt.Parallel,
		RootSeed:   spec.Seeds.Root,
		OnProgress: opt.OnProgress,
	}, spec.Tasks())
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", spec.Name, err)
	}
	return newFindings(spec, agg)
}
