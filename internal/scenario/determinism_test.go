package scenario

import (
	"bytes"
	"testing"
)

// TestFindingsDeterministicAcrossParallel is the harness's core contract:
// the same spec at the same seeds renders byte-identical findings.json
// and FINDINGS.md at any worker count. The -check CI gate depends on it.
func TestFindingsDeterministicAcrossParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fabric simulation")
	}
	spec := mustParse(t, validSpecJSON)
	render := func(parallel int) (jsonBytes []byte, md string) {
		t.Helper()
		f, err := Execute(spec, Options{Parallel: parallel})
		if err != nil {
			t.Fatalf("Execute(parallel=%d): %v", parallel, err)
		}
		b, err := f.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b, f.RenderMarkdown(spec)
	}
	j1, m1 := render(1)
	j8, m8 := render(8)
	if !bytes.Equal(j1, j8) {
		t.Errorf("findings.json differs between parallel=1 and parallel=8:\n%s\nvs\n%s", j1, j8)
	}
	if m1 != m8 {
		t.Errorf("FINDINGS.md differs between parallel=1 and parallel=8")
	}

	// Round-trip: committed bytes decode and pass digest verification.
	f, err := DecodeFindings(j1)
	if err != nil {
		t.Fatalf("DecodeFindings on fresh bytes: %v", err)
	}
	if f.Scenario != spec.Name {
		t.Fatalf("decoded scenario %q, want %q", f.Scenario, spec.Name)
	}

	// A tampered VALUE must fail the integrity digest (whitespace-only
	// edits survive: the digest is computed over the re-encoded canonical
	// form, not the file bytes — -check catches those byte-for-byte).
	tampered := bytes.Replace(j1, []byte(`"root_seed": 1`), []byte(`"root_seed": 7`), 1)
	if bytes.Equal(tampered, j1) {
		t.Fatal("tamper had no effect")
	}
	if _, err := DecodeFindings(tampered); err == nil {
		t.Fatal("tampered findings passed digest verification")
	}
}
