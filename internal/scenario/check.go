package scenario

import (
	"fmt"
	"strconv"

	"basrpt/internal/runner"
	"basrpt/internal/stats"
)

// Check outcomes. Comparisons are between per-metric replicate means with
// margin = the sum of the two sides' 95%-CI half-widths (zero for a
// constant side) — or, for paired checks, the 95%-CI half-width of the
// per-replicate differences — so a check only passes or fails when the
// data is decisive relative to its own seed-to-seed dispersion:
//
//   - gt/lt pass when the means differ in the claimed direction by more
//     than the margin, fail when they differ the other way by at least
//     the margin, and are inconclusive in between;
//   - ge/le encode "not decisively worse": they pass unless the claimed
//     direction is violated by more than the margin (never inconclusive);
//   - eq passes when |left − right| ≤ tolerance + margin, fails
//     otherwise.
const (
	OutcomePass         = "pass"
	OutcomeFail         = "fail"
	OutcomeInconclusive = "inconclusive"
)

// Findings statuses, decided by the checks: any failing check refutes the
// hypothesis, otherwise any inconclusive check leaves it open, otherwise
// it is confirmed.
const (
	StatusConfirmed    = "Confirmed"
	StatusRefuted      = "Refuted"
	StatusInconclusive = "Inconclusive"
)

// CheckResult is one evaluated check: the spec's assertion plus the
// numbers it resolved to and the outcome.
type CheckResult struct {
	// Name, Left, Op, Right restate the CheckSpec (Right is the rendered
	// constant for value checks).
	Name  string `json:"name"`
	Left  string `json:"left"`
	Op    string `json:"op"`
	Right string `json:"right"`
	// Paired records whether the margin came from per-replicate paired
	// differences (see CheckSpec.Paired).
	Paired bool `json:"paired,omitempty"`
	// LeftMean and RightMean are the compared replicate means; Margin is
	// the decisiveness margin: the combined marginal 95%-CI half-widths,
	// or the 95%-CI half-width of the paired differences for paired
	// checks, plus the tolerance for eq checks.
	LeftMean  float64 `json:"left_mean"`
	RightMean float64 `json:"right_mean"`
	Margin    float64 `json:"margin"`
	// Outcome is pass, fail, or inconclusive; Detail is the human-read
	// one-liner rendered into FINDINGS.md.
	Outcome string `json:"outcome"`
	Detail  string `json:"detail"`
}

// evaluateChecks resolves every check against the aggregate. A reference
// to a metric the run did not produce is an execution error (the spec
// named a quantity that does not exist), not a failed check.
func evaluateChecks(spec *Spec, agg *runner.Aggregate) ([]CheckResult, error) {
	results := make([]CheckResult, 0, len(spec.Checks))
	for i, c := range spec.Checks {
		left := agg.Metric(c.Left)
		if left == nil {
			return nil, fmt.Errorf("scenario: check %d (%s): left metric %q not produced by the run", i, c.Name, c.Left)
		}
		r := CheckResult{
			Name:     c.Name,
			Left:     c.Left,
			Op:       c.Op,
			Paired:   c.Paired,
			LeftMean: left.Mean,
			Margin:   left.CI95,
		}
		if c.Right != "" {
			right := agg.Metric(c.Right)
			if right == nil {
				return nil, fmt.Errorf("scenario: check %d (%s): right metric %q not produced by the run", i, c.Name, c.Right)
			}
			r.Right = c.Right
			r.RightMean = right.Mean
			if c.Paired {
				margin, err := pairedMargin(left, right, len(agg.Seeds))
				if err != nil {
					return nil, fmt.Errorf("scenario: check %d (%s): %w", i, c.Name, err)
				}
				r.Margin = margin
			} else {
				r.Margin += right.CI95
			}
		} else {
			r.Right = strconv.FormatFloat(*c.Value, 'g', -1, 64)
			r.RightMean = *c.Value
		}
		if c.Op == "eq" {
			r.Margin += c.Tolerance
		}
		r.Outcome = decide(c.Op, r.LeftMean, r.RightMean, r.Margin)
		kind := ""
		if c.Paired {
			kind = ", paired"
		}
		r.Detail = fmt.Sprintf("%s = %s %s %s = %s (margin %s%s): %s",
			r.Left, fmtG(r.LeftMean), c.Op, r.Right, fmtG(r.RightMean), fmtG(r.Margin), kind, r.Outcome)
		results = append(results, r)
	}
	return results, nil
}

// pairedMargin is the 95%-CI half-width of the per-replicate differences
// left_i − right_i. Replicate i of both metrics ran the identical derived
// seed (runner aggregates in replicate order), so the difference isolates
// the scheduling discipline from the cross-seed workload draw. Both
// metrics must have been reported by every replicate, or pairing is
// undefined (Samples skips replicates that omitted the metric, which
// would silently misalign the pairs).
func pairedMargin(left, right *runner.MetricAggregate, replicates int) (float64, error) {
	if left.N != replicates || right.N != replicates {
		return 0, fmt.Errorf("paired check needs every replicate to report both metrics: %s has %d of %d samples, %s has %d",
			left.Name, left.N, replicates, right.Name, right.N)
	}
	var s stats.Summary
	for i := range left.Samples {
		s.Add(left.Samples[i] - right.Samples[i])
	}
	return s.CI95(), nil
}

// decide applies one comparison; see the outcome-constants comment for
// the semantics.
func decide(op string, left, right, margin float64) string {
	d := left - right
	switch op {
	case "gt":
		if d > margin {
			return OutcomePass
		}
		if d <= -margin {
			return OutcomeFail
		}
		return OutcomeInconclusive
	case "lt":
		if -d > margin {
			return OutcomePass
		}
		if -d <= -margin {
			return OutcomeFail
		}
		return OutcomeInconclusive
	case "ge":
		if d >= -margin {
			return OutcomePass
		}
		return OutcomeFail
	case "le":
		if d <= margin {
			return OutcomePass
		}
		return OutcomeFail
	case "eq":
		if d < 0 {
			d = -d
		}
		if d <= margin {
			return OutcomePass
		}
		return OutcomeFail
	}
	// Validate rejects unknown ops before execution.
	panic("scenario: unreachable op " + op)
}

// statusOf folds check outcomes into the findings status.
func statusOf(checks []CheckResult) string {
	status := StatusConfirmed
	for _, c := range checks {
		switch c.Outcome {
		case OutcomeFail:
			return StatusRefuted
		case OutcomeInconclusive:
			status = StatusInconclusive
		}
	}
	return status
}

// fmtG renders a float compactly and deterministically (shortest
// round-trip form, the same representation encoding/json uses).
func fmtG(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
