#!/usr/bin/env bash
# ops_smoke.sh — live ops-endpoint smoke test, wired into `make ops-smoke`
# and CI.
#
# Starts a sharded fabric run with the -ops endpoint on an ephemeral
# port, polls /metrics and /progress while the simulation executes, and
# asserts both are well-formed (Prometheus exposition lines, valid
# progress JSON). Then runs a short decomposed run with -timeline and
# checks the Chrome trace_event export parses and names the cell tracks.
# Stdlib + curl only; artifacts land in ops_smoke_out/ (kept on failure
# for the CI upload).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=ops_smoke_out
rm -rf "$OUT"
mkdir -p "$OUT"

GO="${GO:-go}"
$GO build -o "$OUT/basrptsim" ./cmd/basrptsim

fail() {
    echo "ops-smoke: FAIL: $*" >&2
    exit 1
}

# --- live endpoint: long enough run to be mid-flight when we poll -------
# (2 s simulated keeps the batched engine busy through every assertion
# below; the run is killed once the checks pass, so wall cost is bounded
# by the polling, not the horizon)
"$OUT/basrptsim" -shards 4 -racks 8 -hosts 6 -duration 2 -load 0.7 \
    -ops 127.0.0.1:0 >"$OUT/run.log" 2>&1 &
SIM_PID=$!
trap 'kill "$SIM_PID" 2>/dev/null || true' EXIT

# The run prints "[ops endpoint listening on http://127.0.0.1:PORT]"
# before simulating; grab the URL with retries.
URL=""
for _ in $(seq 1 50); do
    URL=$(grep -oE 'http://[0-9.]+:[0-9]+' "$OUT/run.log" | head -1 || true)
    [ -n "$URL" ] && break
    sleep 0.1
done
[ -n "$URL" ] && echo "ops-smoke: endpoint at $URL" || fail "no ops URL in run.log: $(cat "$OUT/run.log")"

# Poll until the run has made progress (decisions > 0 on /metrics).
OK=""
for _ in $(seq 1 100); do
    if curl -sf "$URL/metrics" >"$OUT/metrics.txt" 2>/dev/null \
        && grep -qE '^basrpt_run_decisions [1-9]' "$OUT/metrics.txt"; then
        OK=1
        break
    fi
    sleep 0.1
done
[ -n "$OK" ] || fail "/metrics never reported live decisions: $(cat "$OUT/metrics.txt" 2>/dev/null || true)"

grep -qE '^basrpt_run_sim_time_seconds [0-9]' "$OUT/metrics.txt" || fail "/metrics lacks basrpt_run_sim_time_seconds"
grep -qE '^basrpt_run_percent_done [0-9]' "$OUT/metrics.txt" || fail "/metrics lacks basrpt_run_percent_done"

# The sharded engine's pool plane must be live mid-run: barrier cadence
# (windows per barrier > 0) and per-cell busy/wait attribution for every
# cell of the 8-rack fixture.
grep -qE '^basrpt_shard_windows_per_barrier [0-9.]+' "$OUT/metrics.txt" || fail "/metrics lacks basrpt_shard_windows_per_barrier"
grep -qE '^basrpt_shard_barriers [1-9]' "$OUT/metrics.txt" || fail "/metrics lacks live basrpt_shard_barriers"
grep -qE '^basrpt_shard_workers [1-9]' "$OUT/metrics.txt" || fail "/metrics lacks basrpt_shard_workers"
grep -qE '^basrpt_shard_cell_busy_seconds\{cell="0"\} [0-9.]' "$OUT/metrics.txt" || fail "/metrics lacks per-cell busy attribution"
grep -qE '^basrpt_shard_cell_wait_seconds\{cell="7"\} [0-9.]' "$OUT/metrics.txt" || fail "/metrics lacks per-cell wait attribution"

curl -sf "$URL/progress" >"$OUT/progress.json" || fail "/progress unreachable"
python3 - "$OUT/progress.json" <<'PYEOF' || fail "/progress is not well-formed"
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["uptime_s"] >= 0, doc
run = doc.get("run")
assert run is not None and run["duration_s"] == 2, doc
assert 0 <= doc.get("percent_done", 0) <= 100, doc
shard = doc.get("shard")
assert shard is not None and shard["cells"] == 8, doc
assert shard["barriers"] >= 1 and shard["windows_per_barrier"] > 0, doc
assert len(shard["cell_busy_ns"]) == 8 and len(shard["cell_wait_ns"]) == 8, doc
PYEOF

curl -sf "$URL/debug/pprof/cmdline" >/dev/null || fail "pprof endpoint unreachable"

kill "$SIM_PID" 2>/dev/null || true
wait "$SIM_PID" 2>/dev/null || true

# --- timeline export: short decomposed run ------------------------------
"$OUT/basrptsim" -shards 4 -racks 8 -hosts 6 -duration 0.005 -load 0.7 \
    -timeline "$OUT/timeline.json" >"$OUT/timeline_run.log" 2>&1 \
    || fail "timeline run failed: $(cat "$OUT/timeline_run.log")"
python3 - "$OUT/timeline.json" <<'PYEOF' || fail "timeline export is not a valid Chrome trace"
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert len(events) > 10, f"only {len(events)} events"
names = {e["args"]["name"] for e in events if e.get("ph") == "M" and e.get("name") == "thread_name"}
assert "cell 0" in names and "coordinator" in names, names
assert any(e.get("ph") == "X" and e.get("name") == "window" for e in events)
assert any(e.get("ph") == "X" and e.get("name") == "batch" for e in events)
assert any(e.get("ph") == "X" and e.get("name") == "barrier" for e in events)
PYEOF

rm -rf "$OUT"
trap - EXIT
echo "ops-smoke: OK (/metrics live, /progress well-formed, pprof up, timeline valid)"
