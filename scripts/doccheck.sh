#!/usr/bin/env bash
# doccheck.sh — documentation lint, wired into `make doccheck` and CI.
#
# Enforced invariants:
#   1. every internal package has a `// Package <name> ...` comment;
#   2. every command under cmd/ has a `// Command <name> ...` comment;
#   3. every exported top-level symbol in internal/scenario (the
#      spec/findings API other tools consume), internal/obs (the
#      instrumentation API), and internal/ops (the live-endpoint API)
#      carries a doc comment.
#
# Stdlib tooling only: grep + awk over non-test Go sources.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# 1. Package comments for every internal package.
for dir in internal/*/; do
    pkg=$(basename "$dir")
    files=$(ls "$dir"*.go 2>/dev/null | grep -v '_test\.go$' || true)
    if [ -z "$files" ]; then
        continue
    fi
    # shellcheck disable=SC2086
    if ! grep -qsE "^// Package $pkg( |$)" $files; then
        echo "doccheck: internal/$pkg: no '// Package $pkg ...' comment in any non-test file" >&2
        fail=1
    fi
done

# 2. Command comments for every cmd.
for dir in cmd/*/; do
    name=$(basename "$dir")
    if ! grep -qsE "^// Command $name( |$)" "$dir"*.go; then
        echo "doccheck: cmd/$name: no '// Command $name ...' comment" >&2
        fail=1
    fi
done

# 3. Exported top-level symbols in the consumed-API packages are
# documented: any top-level `func F`, method on any receiver, `type T`,
# or `const`/`var` (single exported name or grouped block) must be
# preceded by a comment.
for f in internal/scenario/*.go internal/obs/*.go internal/ops/*.go; do
    case "$f" in *_test.go) continue ;; esac
    awk -v file="$f" '
        /^(func|type) [A-Z]/ || /^func \([^)]+\) [A-Z]/ || /^(const|var) ([A-Z]|\()/ {
            if (prev !~ /^\/\//) {
                printf "doccheck: %s:%d: exported symbol lacks a doc comment: %s\n", file, NR, $0
                bad = 1
            }
        }
        { prev = $0 }
        END { exit bad }
    ' "$f" || fail=1
done

if [ "$fail" -ne 0 ]; then
    echo "doccheck: FAIL" >&2
    exit 1
fi
echo "doccheck: OK (package comments, command comments, scenario/obs/ops exported symbols)"
