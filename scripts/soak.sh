#!/usr/bin/env bash
# Checkpoint/restore soak: for each seed, with and without fault
# injection, run the fabric three ways —
#
#   full     : uninterrupted reference run
#   part1    : identical run halted at the first persisted checkpoint
#   part2    : fresh process resumed from that checkpoint
#
# and require (a) the resumed summary byte-identical to the full one
# (modulo the checkpoint-stop diagnosis, which only the halted run has)
# and (b) cat(part1.jsonl, part2.jsonl) byte-identical to full.jsonl.
# Any divergence is a determinism regression in the checkpoint layer.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT=${SOAK_OUT:-soak_out}
DURATION=${SOAK_DURATION:-1}
SEEDS=${SOAK_SEEDS:-"42 43"}
BIN="$OUT/basrptsim"

rm -rf "$OUT"
mkdir -p "$OUT"
go build -o "$BIN" ./cmd/basrptsim

fail=0
for seed in $SEEDS; do
  for faults in "" "-faults"; do
    tag="seed${seed}${faults:+_faults}"
    common=(-seed "$seed" -duration "$DURATION" -load 0.8 -racks 2 -hosts 3 $faults -json)

    "$BIN" "${common[@]}" -trace "$OUT/$tag.full.jsonl" \
      >"$OUT/$tag.full.json"
    "$BIN" "${common[@]}" -trace "$OUT/$tag.part1.jsonl" \
      -checkpoint "$OUT/$tag.ckpt" -halt-after-checkpoint \
      >"$OUT/$tag.part1.json"
    "$BIN" "${common[@]}" -trace "$OUT/$tag.part2.jsonl" \
      -resume "$OUT/$tag.ckpt" \
      >"$OUT/$tag.resumed.json"

    if ! cat "$OUT/$tag.part1.jsonl" "$OUT/$tag.part2.jsonl" \
        | cmp -s "$OUT/$tag.full.jsonl" -; then
      echo "soak FAIL [$tag]: stitched trace differs from uninterrupted trace" >&2
      fail=1
    fi

    full_digest=$(sed -n 's/.*"digest": *"\([0-9a-f]*\)".*/\1/p' "$OUT/$tag.full.json")
    res_digest=$(sed -n 's/.*"digest": *"\([0-9a-f]*\)".*/\1/p' "$OUT/$tag.resumed.json")
    if [ -z "$full_digest" ] || [ "$full_digest" != "$res_digest" ]; then
      echo "soak FAIL [$tag]: result digest $res_digest != $full_digest" >&2
      fail=1
    fi

    if [ "$fail" = 0 ]; then
      echo "soak ok [$tag]: digest $full_digest, trace $(wc -c <"$OUT/$tag.full.jsonl") bytes"
    fi
  done
done

if [ "$fail" != 0 ]; then
  echo "soak: FAILED — artifacts left in $OUT/ for inspection" >&2
  exit 1
fi
echo "soak: all runs resume bit-for-bit"
