// Command basrpttrace runs one fabric simulation and exports its time
// series as CSV for external plotting — the raw data behind Figures 2 and
// 5:
//
//	basrpttrace -scheduler srpt -load 0.95 -out /tmp/srpt
//
// writes /tmp/srpt_queue.csv, /tmp/srpt_total_backlog.csv and
// /tmp/srpt_throughput.csv. With -out "" the series go to stdout.
//
// With -seeds N (N > 1) the command instead replicates the run across N
// seeds on up to -parallel workers and prints the scalar headline metrics
// (throughput, per-class FCT, backlog tail) as a mean/±ci95 aggregate;
// series export stays single-seed because trajectories from different
// seeds cannot be meaningfully averaged sample-by-sample.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"basrpt"
	"basrpt/internal/runner"
	"basrpt/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "basrpttrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("basrpttrace", flag.ContinueOnError)
	var (
		schedName = fs.String("scheduler", "srpt", fmt.Sprintf("scheduling discipline %v", basrpt.SchedulerNames()))
		v         = fs.Float64("v", basrpt.DefaultV, "BASRPT tradeoff weight V")
		load      = fs.Float64("load", 0.95, "per-port offered load in (0, 1)")
		racks     = fs.Int("racks", 4, "number of racks")
		hosts     = fs.Int("hosts", 6, "hosts per rack")
		duration  = fs.Float64("duration", 4, "simulated seconds")
		seed      = fs.Uint64("seed", 1, "random seed")
		monitor   = fs.Int("port", 0, "ingress port to monitor")
		out       = fs.String("out", "", "output file prefix (empty: stdout)")
		seeds     = fs.Int("seeds", 1, "replicates; > 1 prints a scalar-metric ±ci aggregate instead of series")
		parallel  = fs.Int("parallel", 0, "worker count for multi-seed runs (0 = GOMAXPROCS)")
		tracePath = fs.String("trace", "", "also write the schema-versioned JSONL event trace to this file (single-seed only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seeds < 1 {
		return fmt.Errorf("seeds %d < 1", *seeds)
	}
	if *tracePath != "" && *seeds > 1 {
		return fmt.Errorf("-trace is single-seed only (traces from concurrent replicates would interleave); rerun with -seeds 1")
	}

	// simulate runs one full fabric simulation for the given seed. Every
	// component — scheduler included — is built inside so the closure is
	// safe to invoke from concurrent runner workers (which pass a nil
	// instrumentation handle).
	simulate := func(seed uint64, o *basrpt.Obs) (*basrpt.FabricResult, error) {
		topo, err := basrpt.NewTopology(basrpt.ScaledTopology(*racks, *hosts))
		if err != nil {
			return nil, err
		}
		scheduler, err := basrpt.NewScheduler(*schedName, basrpt.SchedulerOptions{V: *v, Seed: seed})
		if err != nil {
			return nil, err
		}
		gen, err := basrpt.NewMixedWorkload(basrpt.MixedConfig{
			Topology:          topo,
			Load:              *load,
			QueryByteFraction: basrpt.DefaultQueryByteFraction,
			Duration:          *duration,
			Seed:              seed,
		})
		if err != nil {
			return nil, err
		}
		sim, err := basrpt.NewFabricSim(basrpt.FabricConfig{
			Hosts:       topo.NumHosts(),
			LinkBps:     topo.HostLinkBps(),
			Scheduler:   scheduler,
			Generator:   gen,
			Duration:    *duration,
			MonitorPort: *monitor,
			Obs:         o,
		})
		if err != nil {
			return nil, err
		}
		return sim.Run()
	}

	if *seeds > 1 {
		task := runner.Task{Name: *schedName, Run: func(seed uint64) (runner.Sample, error) {
			res, err := simulate(seed, nil)
			if err != nil {
				return nil, err
			}
			q := res.FCT.Stats(basrpt.ClassQuery)
			bg := res.FCT.Stats(basrpt.ClassBackground)
			return runner.Sample{
				"gbps":            res.AverageGbps(),
				"query_avg_ms":    q.MeanMs,
				"query_p99_ms":    q.P99Ms,
				"bg_avg_ms":       bg.MeanMs,
				"bg_p99_ms":       bg.P99Ms,
				"completed_flows": float64(res.CompletedFlows),
				"maxport_tail_mb": res.MaxPortSeries.TailMean(0.3) / 1e6,
			}, nil
		}}
		agg, err := basrpt.RunTasks(basrpt.MultiConfig{
			Seeds: *seeds, Parallel: *parallel, RootSeed: *seed,
		}, []basrpt.MultiTask{task})
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, agg.Render(fmt.Sprintf("trace %s, load %.0f%%, %d×%d hosts",
			*schedName, *load*100, *racks, *hosts)))
		fmt.Fprintf(stdout, "[%d seeds on %d workers in %s; series export is single-seed — rerun with -seeds 1]\n",
			*seeds, agg.Parallel, agg.Elapsed.Round(time.Millisecond))
		return nil
	}

	var traceFile *os.File
	var traceWriter *basrpt.TraceWriter
	var o *basrpt.Obs
	if *tracePath != "" {
		var err error
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			return fmt.Errorf("create trace: %w", err)
		}
		defer traceFile.Close()
		traceWriter, err = basrpt.NewTraceWriter(traceFile, basrpt.TraceHeader{
			Seed:        int64(*seed),
			Scheduler:   *schedName,
			Hosts:       *racks * *hosts,
			Load:        *load,
			DurationSec: *duration,
		})
		if err != nil {
			return fmt.Errorf("start trace: %w", err)
		}
		o = basrpt.NewObs(basrpt.ObsOptions{Sink: traceWriter})
	}

	res, err := simulate(*seed, o)
	if err != nil {
		return err
	}
	if traceWriter != nil {
		if err := traceWriter.Flush(); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		if err := traceFile.Close(); err != nil {
			return fmt.Errorf("close trace: %w", err)
		}
		fmt.Fprintf(stdout, "wrote %s (%d events)\n", *tracePath, traceWriter.Events())
	}

	tput := res.Throughput.SeriesGbps()
	exports := []struct {
		name   string
		header string
		series *basrpt.Series
	}{
		{"queue", "monitored_port_backlog_bytes", &res.QueueSeries},
		{"total_backlog", "total_backlog_bytes", &res.TotalBacklogSeries},
		{"throughput", "throughput_gbps", &tput},
	}
	for _, e := range exports {
		if *out == "" {
			fmt.Fprintf(stdout, "# %s\n", e.name)
			if err := trace.WriteSeriesCSV(stdout, e.header, e.series); err != nil {
				return err
			}
			continue
		}
		path := fmt.Sprintf("%s_%s.csv", *out, e.name)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		writeErr := trace.WriteSeriesCSV(f, e.header, e.series)
		closeErr := f.Close()
		if writeErr != nil {
			return fmt.Errorf("write %s: %w", path, writeErr)
		}
		if closeErr != nil {
			return fmt.Errorf("close %s: %w", path, closeErr)
		}
		fmt.Fprintf(stdout, "wrote %s (%d samples)\n", path, e.series.Len())
	}
	return nil
}
