// Command basrpttrace runs one fabric simulation and exports its time
// series as CSV for external plotting — the raw data behind Figures 2 and
// 5:
//
//	basrpttrace -scheduler srpt -load 0.95 -out /tmp/srpt
//
// writes /tmp/srpt_queue.csv, /tmp/srpt_total_backlog.csv and
// /tmp/srpt_throughput.csv. With -out "" the series go to stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"basrpt"
	"basrpt/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "basrpttrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("basrpttrace", flag.ContinueOnError)
	var (
		schedName = fs.String("scheduler", "srpt", fmt.Sprintf("scheduling discipline %v", basrpt.SchedulerNames()))
		v         = fs.Float64("v", basrpt.DefaultV, "BASRPT tradeoff weight V")
		load      = fs.Float64("load", 0.95, "per-port offered load in (0, 1)")
		racks     = fs.Int("racks", 4, "number of racks")
		hosts     = fs.Int("hosts", 6, "hosts per rack")
		duration  = fs.Float64("duration", 4, "simulated seconds")
		seed      = fs.Uint64("seed", 1, "random seed")
		monitor   = fs.Int("port", 0, "ingress port to monitor")
		out       = fs.String("out", "", "output file prefix (empty: stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	topo, err := basrpt.NewTopology(basrpt.ScaledTopology(*racks, *hosts))
	if err != nil {
		return err
	}
	scheduler, err := basrpt.NewScheduler(*schedName, basrpt.SchedulerOptions{V: *v, Seed: *seed})
	if err != nil {
		return err
	}
	gen, err := basrpt.NewMixedWorkload(basrpt.MixedConfig{
		Topology:          topo,
		Load:              *load,
		QueryByteFraction: basrpt.DefaultQueryByteFraction,
		Duration:          *duration,
		Seed:              *seed,
	})
	if err != nil {
		return err
	}
	sim, err := basrpt.NewFabricSim(basrpt.FabricConfig{
		Hosts:       topo.NumHosts(),
		LinkBps:     topo.HostLinkBps(),
		Scheduler:   scheduler,
		Generator:   gen,
		Duration:    *duration,
		MonitorPort: *monitor,
	})
	if err != nil {
		return err
	}
	res, err := sim.Run()
	if err != nil {
		return err
	}

	tput := res.Throughput.SeriesGbps()
	exports := []struct {
		name   string
		header string
		series *basrpt.Series
	}{
		{"queue", "monitored_port_backlog_bytes", &res.QueueSeries},
		{"total_backlog", "total_backlog_bytes", &res.TotalBacklogSeries},
		{"throughput", "throughput_gbps", &tput},
	}
	for _, e := range exports {
		if *out == "" {
			fmt.Fprintf(stdout, "# %s\n", e.name)
			if err := trace.WriteSeriesCSV(stdout, e.header, e.series); err != nil {
				return err
			}
			continue
		}
		path := fmt.Sprintf("%s_%s.csv", *out, e.name)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		writeErr := trace.WriteSeriesCSV(f, e.header, e.series)
		closeErr := f.Close()
		if writeErr != nil {
			return fmt.Errorf("write %s: %w", path, writeErr)
		}
		if closeErr != nil {
			return fmt.Errorf("close %s: %w", path, closeErr)
		}
		fmt.Fprintf(stdout, "wrote %s (%d samples)\n", path, e.series.Len())
	}
	return nil
}
