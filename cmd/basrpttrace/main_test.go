package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"basrpt"
)

func TestRunToStdout(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-scheduler", "srpt", "-racks", "2", "-hosts", "3",
		"-duration", "0.3", "-load", "0.6",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# queue", "# total_backlog", "# throughput", "time,"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunToFiles(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "run")
	var buf bytes.Buffer
	err := run([]string{
		"-scheduler", "fast-basrpt", "-racks", "2", "-hosts", "3",
		"-duration", "0.3", "-load", "0.6", "-out", prefix,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{"queue", "total_backlog", "throughput"} {
		path := prefix + "_" + suffix + ".csv"
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing export %s: %v", path, err)
		}
		if !strings.HasPrefix(string(data), "time,") {
			t.Fatalf("%s has no header: %q", path, string(data[:20]))
		}
	}
	if !strings.Contains(buf.String(), "wrote") {
		t.Fatalf("stdout = %q", buf.String())
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scheduler", "bogus"}, &buf); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if err := run([]string{"-port", "99", "-racks", "2", "-hosts", "2", "-duration", "0.1"}, &buf); err == nil {
		t.Fatal("bad monitor port accepted")
	}
	if err := run([]string{"-out", "/nonexistent-dir/xx", "-racks", "2", "-hosts", "2", "-duration", "0.1", "-load", "0.4"}, &buf); err == nil {
		t.Fatal("unwritable output path accepted")
	}
}

func TestRunJSONLTraceExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	var buf bytes.Buffer
	err := run([]string{
		"-scheduler", "fast-basrpt", "-racks", "2", "-hosts", "2",
		"-duration", "0.2", "-load", "0.5", "-seed", "4",
		"-out", filepath.Join(dir, "run"), "-trace", path,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	h, events, err := basrpt.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if h.Seed != 4 || len(events) == 0 {
		t.Fatalf("header %+v with %d events", h, len(events))
	}
	if !strings.Contains(buf.String(), "run.jsonl") {
		t.Fatalf("stdout missing trace report: %q", buf.String())
	}

	// Multi-seed traces would interleave; the combination is rejected.
	if err := run([]string{
		"-racks", "2", "-hosts", "2", "-duration", "0.1", "-load", "0.4",
		"-seeds", "2", "-trace", path,
	}, &buf); err == nil {
		t.Fatal("-trace with -seeds > 1 accepted")
	}
}
