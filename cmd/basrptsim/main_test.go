package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"basrpt"
)

func TestRunTextOutput(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-scheduler", "fast-basrpt", "-racks", "2", "-hosts", "3",
		"-duration", "0.3", "-load", "0.5",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fast-basrpt", "throughput", "query FCT", "queue trend"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-scheduler", "srpt", "-racks", "2", "-hosts", "3",
		"-duration", "0.3", "-load", "0.5", "-json",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var got summary
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if got.Scheduler != "srpt" || got.Hosts != 6 {
		t.Fatalf("summary = %+v", got)
	}
	if got.CompletedFlows == 0 || got.ThroughputGbps <= 0 {
		t.Fatalf("empty metrics: %+v", got)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	cases := [][]string{
		{"-scheduler", "bogus"},
		{"-load", "1.5", "-racks", "2", "-hosts", "3"},
		{"-racks", "0"},
		{"-unknownflag"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(append(args, "-duration", "0.1"), &buf); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestRunAllRegistrySchedulers(t *testing.T) {
	for _, name := range []string{"srpt", "fast-basrpt", "maxweight", "fifo", "threshold", "random"} {
		var buf bytes.Buffer
		err := run([]string{
			"-scheduler", name, "-racks", "2", "-hosts", "2",
			"-duration", "0.15", "-load", "0.4",
		}, &buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRunIncastWorkload(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-workload", "incast", "-racks", "2", "-hosts", "3",
		"-duration", "0.2", "-load", "0.3", "-fanout", "3", "-jobs", "200",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "query FCT") {
		t.Fatalf("incast output missing FCTs:\n%s", buf.String())
	}
}

func TestRunRejectsUnknownWorkload(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workload", "chaos"}, &buf); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunTraceExportIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(path string) []byte {
		var buf bytes.Buffer
		err := run([]string{
			"-scheduler", "fast-basrpt", "-racks", "2", "-hosts", "2",
			"-duration", "0.2", "-load", "0.5", "-seed", "9", "-trace", path,
		}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "trace") {
			t.Fatalf("text output missing trace summary:\n%s", buf.String())
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a := runOnce(filepath.Join(dir, "a.jsonl"))
	b := runOnce(filepath.Join(dir, "b.jsonl"))
	if !bytes.Equal(a, b) {
		t.Fatal("fixed-seed -trace exports differ")
	}
	h, events, err := basrpt.ReadTrace(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if h.Schema != basrpt.TraceSchema || h.Seed != 9 || h.Scheduler != "fast-basrpt" {
		t.Fatalf("trace header = %+v", h)
	}
	if len(events) == 0 {
		t.Fatal("trace has no events")
	}
}
