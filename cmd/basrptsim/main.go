// Command basrptsim runs one flow-level fabric simulation with a chosen
// scheduler and workload and prints the resulting metrics:
//
//	basrptsim -scheduler fast-basrpt -v 2500 -load 0.95 -racks 4 -hosts 6 -duration 5
//	basrptsim -scheduler srpt -load 0.6 -json
//	basrptsim -scheduler srpt -load 0.8 -faults -faultseed 7   # inject link faults + a scheduler outage
//	basrptsim -shards 4 -racks 344 -hosts 12 -duration 0.002 -timeline tl.json -ops 127.0.0.1:9090
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"basrpt"
	"basrpt/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "basrptsim:", err)
		os.Exit(1)
	}
}

// summary is the JSON export shape.
type summary struct {
	Scheduler      string  `json:"scheduler"`
	Hosts          int     `json:"hosts"`
	Load           float64 `json:"load"`
	DurationSec    float64 `json:"durationSec"`
	ArrivedFlows   int     `json:"arrivedFlows"`
	CompletedFlows int     `json:"completedFlows"`
	ThroughputGbps float64 `json:"throughputGbps"`
	LeftoverBytes  float64 `json:"leftoverBytes"`
	QueryAvgMs     float64 `json:"queryAvgMs"`
	QueryP99Ms     float64 `json:"queryP99Ms"`
	BgAvgMs        float64 `json:"backgroundAvgMs"`
	BgP99Ms        float64 `json:"backgroundP99Ms"`
	QueueVerdict   string  `json:"queueVerdict"`
	// Digest fingerprints every machine-independent result field: equal
	// digests mean equal runs, including checkpoint-resumed ones.
	Digest string `json:"digest"`

	Faults    *basrpt.FaultCounters   `json:"faults,omitempty"`
	Diagnosis *basrpt.FabricDiagnosis `json:"diagnosis,omitempty"`
	// Sharded-engine extras: the engine family that ran and the
	// wall-clock imbalance report (decomposed runs only; never part of
	// the digest).
	Shards    int                    `json:"shards,omitempty"`
	Imbalance *basrpt.ShardImbalance `json:"imbalance,omitempty"`
}

// writeFileAtomic replaces path via a temp file + rename, so a checkpoint
// reader never observes a half-written file even if the writer dies.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("basrptsim", flag.ContinueOnError)
	var (
		schedName = fs.String("scheduler", "fast-basrpt", fmt.Sprintf("scheduling discipline %v", basrpt.SchedulerNames()))
		v         = fs.Float64("v", basrpt.DefaultV, "BASRPT tradeoff weight V")
		threshold = fs.Float64("threshold", 5e6, "threshold scheduler backlog threshold (bytes)")
		load      = fs.Float64("load", 0.8, "per-port offered load in (0, 1)")
		racks     = fs.Int("racks", 4, "number of racks")
		hosts     = fs.Int("hosts", 6, "hosts per rack")
		duration  = fs.Float64("duration", 4, "simulated seconds")
		seed      = fs.Uint64("seed", 1, "random seed")
		queryFrac = fs.Float64("queryfrac", basrpt.DefaultQueryByteFraction, "fraction of offered bytes carried by 20KB queries")
		pattern   = fs.String("workload", "mixed", "traffic pattern: mixed (paper Section V-A) or incast (partition/aggregate)")
		fanout    = fs.Int("fanout", 8, "incast: backends per job")
		jobRate   = fs.Float64("jobs", 500, "incast: partition/aggregate jobs per second")
		inject    = fs.Bool("faults", false, "inject a deterministic fault schedule (link faults + a scheduler outage)")
		faultSeed = fs.Uint64("faultseed", 1, "seed of the injected fault schedule")
		jsonOut   = fs.Bool("json", false, "emit a JSON summary instead of text")
		tracePath = fs.String("trace", "", "write a schema-versioned JSONL event trace to this file (byte-identical across fixed-seed runs)")
		traceWall = fs.Bool("tracewall", false, "stamp wall-clock nanos into trace events (breaks byte-identity across runs)")
		ckptPath  = fs.String("checkpoint", "", "persist periodic checkpoints to this file (atomic replace; also receives the watchdog's truncation checkpoint)")
		ckptEvery = fs.Float64("checkpointevery", 0, "simulated seconds between checkpoints (default duration/4 when -checkpoint is set)")
		haltAfter = fs.Bool("halt-after-checkpoint", false, "stop cleanly right after the first persisted checkpoint (resume later with -resume)")
		resumeIn  = fs.String("resume", "", "resume from this checkpoint file instead of starting at t=0 (flags must match the original run)")
		window    = fs.Float64("window", 0, "streaming-results window in simulated seconds: emit window.* trace events and bound in-memory series/FCT reservoirs")
		shards    = fs.Int("shards", 0, "run on the sharded fabric engine: 1 = centralized, >= 2 = rack-decomposed parallel cells (0 = legacy single-engine path; mixed workload only)")
		barrier   = fs.Int("barrier-every", 0, "with -shards >= 2: lookahead windows per coordinator barrier (0 = engine default; results are byte-identical at every value)")
		workers   = fs.Int("workers", 0, "with -shards >= 2: persistent worker goroutines executing the cells (0 = GOMAXPROCS; wall-clock only)")
		timeline  = fs.String("timeline", "", "with -shards >= 2: write a Chrome trace_event timeline of cell/coordinator wall-clock execution to this file (open in chrome://tracing or Perfetto)")
		opsAddr   = fs.String("ops", "", "serve a live ops endpoint on this address while the run executes: Prometheus /metrics, /progress JSON, /debug/pprof")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	topo, err := basrpt.NewTopology(basrpt.ScaledTopology(*racks, *hosts))
	if err != nil {
		return err
	}
	if err := topo.ValidateNonBlocking(); err != nil {
		return err
	}
	schedOpts := basrpt.SchedulerOptions{V: *v, Threshold: *threshold, Seed: *seed}
	scheduler, err := basrpt.NewScheduler(*schedName, schedOpts)
	if err != nil {
		return err
	}
	if *timeline != "" && *shards < 2 {
		return fmt.Errorf("-timeline requires the decomposed engine (-shards >= 2)")
	}
	if *shards >= 1 {
		for flagName, set := range map[string]bool{
			"-faults":     *inject,
			"-checkpoint": *ckptPath != "",
			"-resume":     *resumeIn != "",
			"-window":     *window != 0,
		} {
			if set {
				return fmt.Errorf("%s is not supported with -shards (the sharded engine runs the mixed workload end to end)", flagName)
			}
		}
		if *pattern != "mixed" {
			return fmt.Errorf("-shards supports only -workload mixed")
		}
	}
	var opsSrv *basrpt.OpsServer
	if *opsAddr != "" {
		opsSrv, err = basrpt.NewOpsServer(*opsAddr)
		if err != nil {
			return fmt.Errorf("start ops endpoint: %w", err)
		}
		defer opsSrv.Close()
		fmt.Fprintf(w, "[ops endpoint listening on %s]\n", opsSrv.URL())
	}
	if *shards >= 1 {
		return runSharded(w, topo, scheduler, schedOpts, opsSrv, shardedOptions{
			schedName: *schedName, load: *load, queryFrac: *queryFrac,
			duration: *duration, seed: *seed, shards: *shards,
			barrierEvery: *barrier, workers: *workers,
			timelinePath: *timeline, tracePath: *tracePath,
			traceWall: *traceWall, jsonOut: *jsonOut,
		})
	}
	var gen basrpt.Generator
	switch *pattern {
	case "mixed":
		gen, err = basrpt.NewMixedWorkload(basrpt.MixedConfig{
			Topology:          topo,
			Load:              *load,
			QueryByteFraction: *queryFrac,
			Duration:          *duration,
			Seed:              *seed,
		})
	case "incast":
		gen, err = basrpt.NewIncastWorkload(basrpt.IncastConfig{
			Topology:       topo,
			JobsPerSecond:  *jobRate,
			Fanout:         *fanout,
			BackgroundLoad: *load,
			Duration:       *duration,
			Seed:           *seed,
		})
	default:
		return fmt.Errorf("unknown workload %q (mixed|incast)", *pattern)
	}
	if err != nil {
		return err
	}
	cfg := basrpt.FabricConfig{
		Hosts:        topo.NumHosts(),
		LinkBps:      topo.HostLinkBps(),
		Scheduler:    scheduler,
		Generator:    gen,
		Duration:     *duration,
		Seed:         *seed,
		StreamWindow: *window,
	}
	if opsSrv != nil {
		cfg.OnProgress = func(p basrpt.RunProgress) {
			opsSrv.PublishRun(basrpt.OpsRunState{
				SimTimeS: p.SimTime, DurationS: p.Duration, Windows: p.Windows,
				Decisions: p.Decisions, ArrivedFlows: p.ArrivedFlows, CompletedFlows: p.CompletedFlows,
			})
		}
	}
	if *ckptPath != "" {
		every := *ckptEvery
		if every <= 0 {
			every = *duration / 4
		}
		cfg.CheckpointEvery = every
		cfg.CheckpointSink = func(data []byte, simTime float64) error {
			if err := writeFileAtomic(*ckptPath, data); err != nil {
				return err
			}
			if *haltAfter {
				return basrpt.ErrStopAfterCheckpoint
			}
			return nil
		}
	} else if *haltAfter {
		return fmt.Errorf("-halt-after-checkpoint requires -checkpoint")
	}
	if *inject {
		schedule, err := basrpt.GenerateFaults(basrpt.FaultParams{
			Seed:       *faultSeed,
			Horizon:    *duration,
			Ports:      topo.NumHosts(),
			LinkFaults: 3,
			Outages:    1,
		})
		if err != nil {
			return err
		}
		cfg.Faults = basrpt.NewFaultInjector(schedule)
	}
	var traceFile *os.File
	var traceWriter *basrpt.TraceWriter
	if *tracePath != "" {
		traceFile, err = os.Create(*tracePath)
		if err != nil {
			return fmt.Errorf("create trace: %w", err)
		}
		defer traceFile.Close()
		if *resumeIn != "" {
			// A resumed run's trace has no header: concatenating the
			// original (pre-halt) trace with this continuation yields one
			// valid trace, byte-identical to an uninterrupted run's.
			traceWriter = basrpt.NewTraceContinuationWriter(traceFile)
		} else {
			traceWriter, err = basrpt.NewTraceWriter(traceFile, basrpt.TraceHeader{
				Seed:        int64(*seed),
				Scheduler:   *schedName,
				Hosts:       topo.NumHosts(),
				Load:        *load,
				DurationSec: *duration,
				WallClock:   *traceWall,
			})
			if err != nil {
				return fmt.Errorf("start trace: %w", err)
			}
		}
		cfg.Obs = basrpt.NewObs(basrpt.ObsOptions{Sink: traceWriter, WallClock: *traceWall})
	}
	var sim *basrpt.FabricSim
	if *resumeIn != "" {
		data, err := os.ReadFile(*resumeIn)
		if err != nil {
			return fmt.Errorf("read checkpoint: %w", err)
		}
		sim, err = basrpt.ResumeFabricSim(cfg, data)
		if err != nil {
			return err
		}
	} else {
		sim, err = basrpt.NewFabricSim(cfg)
		if err != nil {
			return err
		}
	}
	res, err := sim.Run()
	if err != nil {
		return err
	}
	if opsSrv != nil {
		opsSrv.PublishSnapshot(res.Obs)
	}
	if traceWriter != nil {
		if err := traceWriter.Flush(); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		if err := traceFile.Close(); err != nil {
			return fmt.Errorf("close trace: %w", err)
		}
	}

	q := res.FCT.Stats(basrpt.ClassQuery)
	bg := res.FCT.Stats(basrpt.ClassBackground)
	out := summary{
		Scheduler:      res.SchedulerName,
		Hosts:          topo.NumHosts(),
		Load:           *load,
		DurationSec:    *duration,
		ArrivedFlows:   res.ArrivedFlows,
		CompletedFlows: res.CompletedFlows,
		ThroughputGbps: res.AverageGbps(),
		LeftoverBytes:  res.LeftoverBytes,
		QueryAvgMs:     q.MeanMs,
		QueryP99Ms:     q.P99Ms,
		BgAvgMs:        bg.MeanMs,
		BgP99Ms:        bg.P99Ms,
		QueueVerdict:   res.MaxPortSeries.Trend(basrpt.GrowthThreshold).Verdict.String(),
		Digest:         res.DeterministicDigest(),
	}
	if res.Faults.Any() {
		out.Faults = &res.Faults
	}
	out.Diagnosis = res.Diagnosis
	// A watchdog truncation carries a resumable checkpoint; persist it so
	// the degraded run can be continued with -resume after relaxing the
	// bound that tripped.
	if d := res.Diagnosis; d != nil && len(d.Checkpoint) > 0 && *ckptPath != "" {
		if err := writeFileAtomic(*ckptPath, d.Checkpoint); err != nil {
			return fmt.Errorf("persist truncation checkpoint: %w", err)
		}
	}
	if *jsonOut {
		return trace.WriteJSON(w, out)
	}

	tbl := trace.Table{
		Title:   fmt.Sprintf("%s on %d hosts at %.0f%% load for %gs", out.Scheduler, out.Hosts, out.Load*100, out.DurationSec),
		Headers: []string{"metric", "value"},
	}
	tbl.AddRow("flows arrived/completed", fmt.Sprintf("%d / %d", out.ArrivedFlows, out.CompletedFlows))
	tbl.AddRow("throughput", trace.Gbps(out.ThroughputGbps)+" Gbps")
	tbl.AddRow("leftover backlog", trace.Bytes(out.LeftoverBytes))
	tbl.AddRow("query FCT avg / 99th", trace.Ms(out.QueryAvgMs)+" / "+trace.Ms(out.QueryP99Ms)+" ms")
	tbl.AddRow("background FCT avg / 99th", trace.Ms(out.BgAvgMs)+" / "+trace.Ms(out.BgP99Ms)+" ms")
	tbl.AddRow("queue trend", out.QueueVerdict)
	if c := out.Faults; c != nil {
		tbl.AddRow("link faults seen", fmt.Sprintf("%d started / %d ended", c.LinkFaultStarts, c.LinkFaultEnds))
		tbl.AddRow("scheduler outages", fmt.Sprintf("%d (held %d decisions)", c.OutageStarts, c.DecisionsHeld))
	}
	if d := out.Diagnosis; d != nil {
		tbl.AddRow("watchdog", d.String())
	}
	if traceWriter != nil {
		tbl.AddRow("trace", fmt.Sprintf("%d events -> %s", traceWriter.Events(), *tracePath))
	}
	if d := out.Diagnosis; d != nil && len(d.Checkpoint) > 0 && *ckptPath != "" {
		tbl.AddRow("checkpoint", fmt.Sprintf("%d bytes -> %s (resume with -resume %s)", len(d.Checkpoint), *ckptPath, *ckptPath))
	}
	tbl.AddRow("digest", out.Digest)
	fmt.Fprint(w, tbl.Render())
	fmt.Fprintln(w)
	fmt.Fprint(w, trace.Chart("max-port backlog (bytes)", &res.MaxPortSeries, 60, 8))
	return nil
}

// shardedOptions carries the flag values the sharded path consumes.
type shardedOptions struct {
	schedName    string
	load         float64
	queryFrac    float64
	duration     float64
	seed         uint64
	shards       int
	barrierEvery int
	workers      int
	timelinePath string
	tracePath    string
	traceWall    bool
	jsonOut      bool
}

// runSharded is the -shards path: one run on the sharded fabric engine
// (centralized at 1 shard, rack-decomposed at >= 2), with optional JSONL
// trace, Chrome timeline export, and live ops publishing.
func runSharded(w io.Writer, topo *basrpt.Topology, _ basrpt.Scheduler, schedOpts basrpt.SchedulerOptions, opsSrv *basrpt.OpsServer, opt shardedOptions) error {
	cfg := basrpt.ShardConfig{
		Topology:          topo,
		Scheduler:         opt.schedName,
		SchedOpts:         schedOpts,
		Load:              opt.load,
		QueryByteFraction: opt.queryFrac,
		Duration:          opt.duration,
		Seed:              opt.seed,
		Shards:            opt.shards,
		BarrierEvery:      opt.barrierEvery,
		Workers:           opt.workers,
	}
	var traceFile *os.File
	var traceWriter *basrpt.TraceWriter
	if opt.tracePath != "" {
		var err error
		traceFile, err = os.Create(opt.tracePath)
		if err != nil {
			return fmt.Errorf("create trace: %w", err)
		}
		defer traceFile.Close()
		traceWriter, err = basrpt.NewTraceWriter(traceFile, basrpt.TraceHeader{
			Seed:        int64(opt.seed),
			Scheduler:   opt.schedName,
			Hosts:       topo.NumHosts(),
			Load:        opt.load,
			DurationSec: opt.duration,
			WallClock:   opt.traceWall,
		})
		if err != nil {
			return fmt.Errorf("start trace: %w", err)
		}
		cfg.Obs = basrpt.NewObs(basrpt.ObsOptions{Sink: traceWriter, WallClock: opt.traceWall})
	}
	var tl *basrpt.Timeline
	if opt.timelinePath != "" {
		tl = basrpt.NewTimeline()
		cfg.Timeline = tl
	}
	if opsSrv != nil {
		if opt.shards >= 2 {
			cfg.OnWindow = func(p basrpt.ShardProgress) {
				opsSrv.PublishRun(basrpt.OpsRunState{
					SimTimeS: p.SimTime, DurationS: p.Duration, Windows: p.Window + 1,
					Decisions: p.Decisions, ArrivedFlows: p.ArrivedFlows, CompletedFlows: p.CompletedFlows,
				})
				opsSrv.PublishShard(basrpt.OpsShardState{
					Barriers:          p.Barrier + 1,
					WindowsPerBarrier: p.WindowsPerBarrier,
					Cells:             p.Cells,
					Workers:           p.Workers,
					CellBusyNs:        p.CellBusyNs,
					CellWaitNs:        p.CellWaitNs,
				})
			}
		} else {
			cfg.OnProgress = func(p basrpt.RunProgress) {
				opsSrv.PublishRun(basrpt.OpsRunState{
					SimTimeS: p.SimTime, DurationS: p.Duration, Windows: p.Windows,
					Decisions: p.Decisions, ArrivedFlows: p.ArrivedFlows, CompletedFlows: p.CompletedFlows,
				})
			}
		}
	}
	res, err := basrpt.RunShardedFabric(cfg)
	if err != nil {
		return err
	}
	if opsSrv != nil {
		opsSrv.PublishSnapshot(res.Obs)
	}
	if traceWriter != nil {
		if err := traceWriter.Flush(); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		if err := traceFile.Close(); err != nil {
			return fmt.Errorf("close trace: %w", err)
		}
	}
	if tl != nil {
		f, err := os.Create(opt.timelinePath)
		if err != nil {
			return fmt.Errorf("create timeline: %w", err)
		}
		if err := tl.WriteChromeTrace(f); err != nil {
			f.Close()
			return fmt.Errorf("write timeline: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close timeline: %w", err)
		}
	}

	q := res.FCT.Stats(basrpt.ClassQuery)
	bg := res.FCT.Stats(basrpt.ClassBackground)
	out := summary{
		Scheduler:      res.SchedulerName,
		Hosts:          topo.NumHosts(),
		Load:           opt.load,
		DurationSec:    opt.duration,
		ArrivedFlows:   res.ArrivedFlows,
		CompletedFlows: res.CompletedFlows,
		ThroughputGbps: res.AverageGbps(),
		LeftoverBytes:  res.LeftoverBytes,
		QueryAvgMs:     q.MeanMs,
		QueryP99Ms:     q.P99Ms,
		BgAvgMs:        bg.MeanMs,
		BgP99Ms:        bg.P99Ms,
		QueueVerdict:   res.MaxPortSeries.Trend(basrpt.GrowthThreshold).Verdict.String(),
		Digest:         res.DeterministicDigest(),
		Shards:         opt.shards,
		Imbalance:      res.Imbalance,
	}
	if opt.jsonOut {
		return trace.WriteJSON(w, out)
	}

	tbl := trace.Table{
		Title:   fmt.Sprintf("%s on %d hosts at %.0f%% load for %gs (%d shards)", out.Scheduler, out.Hosts, out.Load*100, out.DurationSec, out.Shards),
		Headers: []string{"metric", "value"},
	}
	tbl.AddRow("flows arrived/completed", fmt.Sprintf("%d / %d", out.ArrivedFlows, out.CompletedFlows))
	tbl.AddRow("throughput", trace.Gbps(out.ThroughputGbps)+" Gbps")
	tbl.AddRow("leftover backlog", trace.Bytes(out.LeftoverBytes))
	tbl.AddRow("query FCT avg / 99th", trace.Ms(out.QueryAvgMs)+" / "+trace.Ms(out.QueryP99Ms)+" ms")
	tbl.AddRow("background FCT avg / 99th", trace.Ms(out.BgAvgMs)+" / "+trace.Ms(out.BgP99Ms)+" ms")
	tbl.AddRow("queue trend", out.QueueVerdict)
	if traceWriter != nil {
		tbl.AddRow("trace", fmt.Sprintf("%d events -> %s", traceWriter.Events(), opt.tracePath))
	}
	if tl != nil {
		tbl.AddRow("timeline", fmt.Sprintf("%d spans -> %s (open in chrome://tracing)", tl.Len(), opt.timelinePath))
	}
	tbl.AddRow("digest", out.Digest)
	fmt.Fprint(w, tbl.Render())
	fmt.Fprintln(w)
	if im := res.Imbalance; im != nil {
		fmt.Fprintln(w, im.String())
	}
	fmt.Fprint(w, trace.Chart("max-port backlog (bytes)", &res.MaxPortSeries, 60, 8))
	return nil
}
