package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinySpec is a minimal fast scenario for end-to-end driver tests.
const tinySpec = `{
  "schema": "basrpt-scenario/1",
  "name": "tiny",
  "title": "tiny scenario",
  "hypothesis": "throughput is nonnegative",
  "topology": {"racks": 2, "hosts_per_rack": 2},
  "duration_s": 0.2,
  "workload": {},
  "loads": [0.5],
  "schedulers": [{"name": "srpt"}],
  "seeds": {"count": 2, "root": 1},
  "checks": [
    {"name": "gbps-nonneg", "left": "srpt/gbps", "op": "ge", "value": 0}
  ]
}`

// writeLibrary lays out dir/tiny/spec.json and returns the spec path.
func writeLibrary(t *testing.T, dir string) string {
	t.Helper()
	specDir := filepath.Join(dir, "tiny")
	if err := os.MkdirAll(specDir, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(specDir, "spec.json")
	if err := os.WriteFile(path, []byte(tinySpec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunListCheckFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fabric simulation")
	}
	lib := t.TempDir()
	specPath := writeLibrary(t, lib)
	outDir := filepath.Join(t.TempDir(), "out")

	// -list before any run: status "unrun".
	var buf bytes.Buffer
	if err := run([]string{"-list", "-dir", lib}, &buf); err != nil {
		t.Fatalf("-list: %v", err)
	}
	if !strings.Contains(buf.String(), "unrun") {
		t.Fatalf("-list before run should show unrun:\n%s", buf.String())
	}

	// -scenario: writes both artifacts next to the spec.
	buf.Reset()
	if err := run([]string{"-scenario", specPath}, &buf); err != nil {
		t.Fatalf("-scenario: %v\n%s", err, buf.String())
	}
	for _, name := range []string{"findings.json", "FINDINGS.md"} {
		if _, err := os.Stat(filepath.Join(lib, "tiny", name)); err != nil {
			t.Fatalf("artifact %s not written: %v", name, err)
		}
	}

	// -list after the run reports the findings status.
	buf.Reset()
	if err := run([]string{"-list", "-dir", lib}, &buf); err != nil {
		t.Fatalf("-list: %v", err)
	}
	if !strings.Contains(buf.String(), "Confirmed") {
		t.Fatalf("-list after run should show the status:\n%s", buf.String())
	}

	// -check over the whole library: byte-identical.
	buf.Reset()
	if err := run([]string{"-check", "-dir", lib, "-out", outDir}, &buf); err != nil {
		t.Fatalf("-check on fresh artifacts failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "byte-identical") {
		t.Fatalf("-check output missing confirmation:\n%s", buf.String())
	}

	// Tamper the committed findings: -check must fail and land the
	// regenerated pair under -out.
	fj := filepath.Join(lib, "tiny", "findings.json")
	data, err := os.ReadFile(fj)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fj, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run([]string{"-check", "-dir", lib, "-out", outDir}, &buf); err == nil {
		t.Fatalf("-check accepted tampered findings:\n%s", buf.String())
	}
	for _, name := range []string{"findings.json", "FINDINGS.md"} {
		if _, err := os.Stat(filepath.Join(outDir, "tiny", name)); err != nil {
			t.Fatalf("regenerated %s not written to -out: %v", name, err)
		}
	}
}

func TestCheckRejectsNameDirMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fabric simulation")
	}
	lib := t.TempDir()
	specDir := filepath.Join(lib, "renamed")
	if err := os.MkdirAll(specDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(specDir, "spec.json"), []byte(tinySpec), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run([]string{"-check", "-scenario", specDir, "-out", filepath.Join(lib, "out")}, &buf)
	if err == nil || !strings.Contains(err.Error()+buf.String(), "does not match its directory") {
		t.Fatalf("name/dir mismatch accepted: err=%v\n%s", err, buf.String())
	}
}

func TestNoActionIsAnError(t *testing.T) {
	lib := t.TempDir()
	writeLibrary(t, lib)
	var buf bytes.Buffer
	if err := run([]string{"-dir", lib}, &buf); err == nil {
		t.Fatal("bare invocation should demand an action")
	}
}

func TestListBrokenSpec(t *testing.T) {
	lib := t.TempDir()
	specDir := filepath.Join(lib, "broken")
	if err := os.MkdirAll(specDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(specDir, "spec.json"), []byte(`{"schema":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-list", "-dir", lib}, &buf); err != nil {
		t.Fatalf("-list with broken spec should still render: %v", err)
	}
	if !strings.Contains(buf.String(), "BROKEN SPEC") {
		t.Fatalf("-list should flag the broken spec:\n%s", buf.String())
	}
}
