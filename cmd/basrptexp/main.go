// Command basrptexp executes the declarative scenario library: JSON specs
// under scenarios/<name>/spec.json describing topology, workload,
// scheduler grid, optional fault schedule, load sweep, seeds, and
// machine-checked hypotheses (see ARCHITECTURE.md "Scenario library").
//
//	basrptexp -list                      # inventory the library
//	basrptexp -scenario scenarios/X      # run one spec, write its findings
//	basrptexp -check                     # regenerate every committed finding
//	                                     # and diff byte-for-byte (the CI gate)
//
// Running a scenario writes two artifacts next to its spec — findings.json
// (schema-versioned, digest-stamped, machine-readable) and FINDINGS.md
// (status, controlled/varied variables, check outcomes, reproduction
// command). Both are byte-deterministic at any -parallel value, which is
// what -check exploits: it reruns the spec and byte-compares the fresh
// artifacts against the committed ones, failing on any drift. On mismatch
// the regenerated files land under -out for inspection (CI uploads them).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"basrpt/internal/ops"
	"basrpt/internal/runner"
	"basrpt/internal/scenario"
	"basrpt/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "basrptexp:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("basrptexp", flag.ContinueOnError)
	var (
		specPath = fs.String("scenario", "", "one scenario: path to a spec.json or its directory")
		dir      = fs.String("dir", "scenarios", "scenario library root (used when -scenario is not given)")
		list     = fs.Bool("list", false, "list the library's scenarios and their committed status")
		check    = fs.Bool("check", false, "regenerate findings and byte-compare against the committed files instead of overwriting them")
		parallel = fs.Int("parallel", 0, "worker count (0 = GOMAXPROCS); findings are byte-identical for any value")
		outDir   = fs.String("out", "scenario_out", "with -check: directory receiving regenerated findings on mismatch")
		progress = fs.Bool("progress", false, "print per-unit progress lines (bracketed; completion order is nondeterministic)")
		opsAddr  = fs.String("ops", "", "serve a live ops endpoint on this address while scenarios run: Prometheus /metrics, /progress JSON (per-unit lifecycle), /debug/pprof")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var opsSrv *ops.Server
	if *opsAddr != "" {
		var err error
		opsSrv, err = ops.NewServer(*opsAddr)
		if err != nil {
			return fmt.Errorf("start ops endpoint: %w", err)
		}
		defer opsSrv.Close()
		fmt.Fprintf(w, "[ops endpoint listening on %s]\n", opsSrv.URL())
	}

	if *list {
		return listScenarios(*dir, w)
	}

	var paths []string
	if *specPath != "" {
		paths = []string{resolveSpec(*specPath)}
	} else {
		var err error
		if paths, err = discoverSpecs(*dir); err != nil {
			return err
		}
		if !*check {
			return fmt.Errorf("nothing to do: pass -scenario, -list, or -check (discovered %d specs in %s)", len(paths), *dir)
		}
	}

	var failures []string
	for _, p := range paths {
		var err error
		if *check {
			err = checkScenario(p, *parallel, *outDir, *progress, opsSrv, w)
		} else {
			err = runScenario(p, *parallel, *progress, opsSrv, w)
		}
		if err != nil {
			if !*check {
				return err
			}
			fmt.Fprintf(w, "FAIL %s: %v\n", p, err)
			failures = append(failures, p)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d of %d scenarios failed the findings check: %v (regenerated artifacts under %s)",
			len(failures), len(paths), failures, *outDir)
	}
	if *check {
		fmt.Fprintf(w, "OK: %d scenario(s) regenerate byte-identical findings\n", len(paths))
	}
	return nil
}

// resolveSpec accepts either the spec file or its directory.
func resolveSpec(path string) string {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		return filepath.Join(path, "spec.json")
	}
	return path
}

// discoverSpecs returns the library's spec paths in sorted (deterministic)
// order.
func discoverSpecs(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*", "spec.json"))
	if err != nil {
		return nil, fmt.Errorf("scan %s: %w", dir, err)
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("no scenarios under %s (expected %s)", dir, filepath.Join(dir, "<name>", "spec.json"))
	}
	sort.Strings(matches)
	return matches, nil
}

// listScenarios prints the library inventory with each scenario's
// committed status.
func listScenarios(dir string, w io.Writer) error {
	paths, err := discoverSpecs(dir)
	if err != nil {
		return err
	}
	tbl := trace.Table{
		Title:   fmt.Sprintf("scenario library — %s", dir),
		Headers: []string{"scenario", "status", "cells", "seeds", "checks", "title"},
	}
	for _, p := range paths {
		spec, err := scenario.LoadSpec(p)
		if err != nil {
			tbl.AddRow(filepath.Base(filepath.Dir(p)), "BROKEN SPEC", "-", "-", "-", err.Error())
			continue
		}
		status := "unrun"
		if data, err := os.ReadFile(filepath.Join(filepath.Dir(p), "findings.json")); err == nil {
			if f, err := scenario.DecodeFindings(data); err == nil {
				status = f.Status
			} else {
				status = "CORRUPT FINDINGS"
			}
		}
		tbl.AddRow(spec.Name, status,
			strconv.Itoa(len(spec.CellNames())), strconv.Itoa(spec.Seeds.Count),
			strconv.Itoa(len(spec.Checks)), spec.Title)
	}
	fmt.Fprint(w, tbl.Render())
	return nil
}

// execute loads and runs one spec, returning the spec, findings, and both
// rendered artifacts.
func execute(path string, parallel int, progress bool, opsSrv *ops.Server, w io.Writer) (*scenario.Spec, *scenario.Findings, []byte, []byte, error) {
	spec, err := scenario.LoadSpec(path)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	opt := scenario.Options{Parallel: parallel}
	if progress || opsSrv != nil {
		opt.OnProgress = func(p runner.Progress) {
			if opsSrv != nil {
				opsSrv.PublishUnit(p)
			}
			if !progress || !p.Phase.Terminal() {
				return // starts/resumes feed the ops endpoint, not the console
			}
			status := "ok"
			if p.Err != nil {
				status = "ERROR: " + p.Err.Error()
			}
			// Bracketed like the benchmark harness's timing lines:
			// strip-able when comparing outputs, never part of findings.
			fmt.Fprintf(w, "[%d/%d %s seed %d: %s]\n", p.Done, p.Total, p.Task, p.Seed, status)
		}
	}
	findings, err := scenario.Execute(spec, opt)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	jsonBytes, err := findings.EncodeJSON()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return spec, findings, jsonBytes, []byte(findings.RenderMarkdown(spec)), nil
}

// runScenario executes one spec and writes its artifacts next to it.
func runScenario(path string, parallel int, progress bool, opsSrv *ops.Server, w io.Writer) error {
	_, findings, jsonBytes, mdBytes, err := execute(path, parallel, progress, opsSrv, w)
	if err != nil {
		return err
	}
	specDir := filepath.Dir(path)
	for _, a := range artifacts(jsonBytes, mdBytes) {
		if err := os.WriteFile(filepath.Join(specDir, a.name), a.data, 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "%s: %s (%d metrics, %d checks) — wrote %s/{findings.json,FINDINGS.md}\n",
		findings.Scenario, findings.Status, len(findings.Metrics), len(findings.Checks), specDir)
	for _, c := range findings.Checks {
		fmt.Fprintf(w, "  %-12s %s — %s\n", c.Outcome, c.Name, c.Detail)
	}
	return nil
}

// checkScenario regenerates one spec's artifacts and byte-compares them
// against the committed files; regenerated bytes land under outDir on any
// mismatch.
func checkScenario(path string, parallel int, outDir string, progress bool, opsSrv *ops.Server, w io.Writer) error {
	spec, findings, jsonBytes, mdBytes, err := execute(path, parallel, progress, opsSrv, w)
	if err != nil {
		return err
	}
	specDir := filepath.Dir(path)
	if base := filepath.Base(specDir); base != spec.Name {
		return fmt.Errorf("spec name %q does not match its directory %q (the reproduction path in FINDINGS.md is derived from the name)", spec.Name, base)
	}
	var mismatches []string
	for _, a := range artifacts(jsonBytes, mdBytes) {
		want, err := os.ReadFile(filepath.Join(specDir, a.name))
		if err != nil {
			mismatches = append(mismatches, fmt.Sprintf("%s: missing committed file (%v)", a.name, err))
		} else if !bytes.Equal(a.data, want) {
			mismatches = append(mismatches, fmt.Sprintf("%s: regenerated bytes differ from committed (%s)", a.name, firstDiff(want, a.data)))
		}
	}
	if len(mismatches) > 0 {
		// Land the regenerated pair under outDir so a failing CI gate
		// uploads exactly what the run produced.
		dst := filepath.Join(outDir, spec.Name)
		if err := os.MkdirAll(dst, 0o755); err != nil {
			return err
		}
		for _, a := range artifacts(jsonBytes, mdBytes) {
			if err := os.WriteFile(filepath.Join(dst, a.name), a.data, 0o644); err != nil {
				return err
			}
		}
		return fmt.Errorf("%s", joinLines(mismatches))
	}
	fmt.Fprintf(w, "%s: %s — byte-identical findings\n", spec.Name, findings.Status)
	return nil
}

// artifact is one generated findings file.
type artifact struct {
	name string
	data []byte
}

// artifacts pairs the two findings renderings with their committed file
// names, in a fixed order.
func artifacts(jsonBytes, mdBytes []byte) []artifact {
	return []artifact{{"findings.json", jsonBytes}, {"FINDINGS.md", mdBytes}}
}

// firstDiff locates the first differing line between two artifacts.
func firstDiff(want, got []byte) string {
	wl, gl := bytes.Split(want, []byte("\n")), bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first difference at line %d: committed %q vs regenerated %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("committed %d lines, regenerated %d lines", len(wl), len(gl))
}

func joinLines(lines []string) string {
	out := lines[0]
	for _, l := range lines[1:] {
		out += "; " + l
	}
	return out
}
