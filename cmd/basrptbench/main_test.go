package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFig1(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "completed 3/3") {
		t.Fatalf("fig1 output wrong:\n%s", out)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig1,ablation", "-scale", "small"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "Ablation") {
		t.Fatalf("combined output wrong:\n%s", out)
	}
}

func TestRunTable1SmallScale(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-exp", "table1", "-scale", "small", "-duration", "0.5"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TABLE I") {
		t.Fatalf("table1 output wrong:\n%s", buf.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "nonsense"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-scale", "galactic"}, &buf); err == nil {
		t.Fatal("unknown scale accepted")
	}
	if err := run([]string{"-notaflag"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestPickScale(t *testing.T) {
	for _, name := range []string{"small", "medium", "paper"} {
		if _, err := pickScale(name); err != nil {
			t.Fatalf("pickScale(%q): %v", name, err)
		}
	}
	if _, err := pickScale("nope"); err == nil {
		t.Fatal("bad scale accepted")
	}
	if pickV(0) != 2500 || pickV(7) != 7 {
		t.Fatal("pickV defaults wrong")
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{
		"-exp", "fig2", "-scale", "small", "-duration", "0.4",
		"-racks", "2", "-hosts", "3", "-csvdir", dir,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig2_srpt_queue.csv", "fig2_threshold_queue.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing export %s: %v", name, err)
		}
		if !strings.HasPrefix(string(data), "time,") {
			t.Fatalf("%s missing header", name)
		}
	}
}

func TestScaleOverrides(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-exp", "table1", "-scale", "small", "-duration", "0.3",
		"-racks", "2", "-hosts", "2",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "4 hosts (2x2)") {
		t.Fatalf("override not applied:\n%s", buf.String())
	}
}
