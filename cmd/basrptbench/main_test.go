package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFig1(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "completed 3/3") {
		t.Fatalf("fig1 output wrong:\n%s", out)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig1,ablation", "-scale", "small"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "Ablation") {
		t.Fatalf("combined output wrong:\n%s", out)
	}
}

func TestRunTable1SmallScale(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-exp", "table1", "-scale", "small", "-duration", "0.5"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TABLE I") {
		t.Fatalf("table1 output wrong:\n%s", buf.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "nonsense"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-scale", "galactic"}, &buf); err == nil {
		t.Fatal("unknown scale accepted")
	}
	if err := run([]string{"-notaflag"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestPickScale(t *testing.T) {
	for _, name := range []string{"small", "medium", "paper"} {
		if _, err := pickScale(name); err != nil {
			t.Fatalf("pickScale(%q): %v", name, err)
		}
	}
	if _, err := pickScale("nope"); err == nil {
		t.Fatal("bad scale accepted")
	}
	if pickV(0) != 2500 || pickV(7) != 7 {
		t.Fatal("pickV defaults wrong")
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{
		"-exp", "fig2", "-scale", "small", "-duration", "0.4",
		"-racks", "2", "-hosts", "3", "-csvdir", dir,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig2_srpt_queue.csv", "fig2_threshold_queue.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing export %s: %v", name, err)
		}
		if !strings.HasPrefix(string(data), "time,") {
			t.Fatalf("%s missing header", name)
		}
	}
}

func TestScaleOverrides(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-exp", "table1", "-scale", "small", "-duration", "0.3",
		"-racks", "2", "-hosts", "2",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "4 hosts (2x2)") {
		t.Fatalf("override not applied:\n%s", buf.String())
	}
}

// stripTimingLines drops the bracketed wall-time lines so outputs can be
// compared across worker counts.
func stripTimingLines(s string) string {
	var kept []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "[") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestMultiSeedDeterminism is the acceptance check: -seeds 5 -parallel 4
// must produce byte-identical aggregate output to -seeds 5 -parallel 1.
func TestMultiSeedDeterminism(t *testing.T) {
	base := []string{"-exp", "table1", "-scale", "small", "-duration", "0.4", "-seeds", "5"}
	var par, ser bytes.Buffer
	if err := run(append(base, "-parallel", "4"), &par); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-parallel", "1"), &ser); err != nil {
		t.Fatal(err)
	}
	p, s := stripTimingLines(par.String()), stripTimingLines(ser.String())
	if p != s {
		t.Fatalf("parallel output differs from serial:\n--- parallel ---\n%s\n--- serial ---\n%s", p, s)
	}
	if !strings.Contains(p, "±ci95") || !strings.Contains(p, "5 seeds") {
		t.Fatalf("aggregate output missing ±ci column or seed count:\n%s", p)
	}
}

// TestMultiSeedCSVAndBenchJSON checks the multi-seed side artifacts: the
// aggregate CSV export and the benchmark-regression JSON report.
func TestMultiSeedCSVAndBenchJSON(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "BENCH_runner.json")
	var buf bytes.Buffer
	err := run([]string{
		"-exp", "table1", "-scale", "small", "-duration", "0.4",
		"-seeds", "3", "-parallel", "2",
		"-csvdir", dir, "-benchjson", benchPath,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	csvData, err := os.ReadFile(filepath.Join(dir, "multi_table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csvData), "metric,n,mean,ci95,") {
		t.Fatalf("aggregate csv header wrong:\n%s", csvData)
	}
	raw, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		GOMAXPROCS  int `json:"gomaxprocs"`
		Experiments []struct {
			Experiment  string  `json:"experiment"`
			Units       int     `json:"units"`
			SerialSec   float64 `json:"serial_sec"`
			ParallelSec float64 `json:"parallel_sec"`
			Speedup     float64 `json:"speedup"`
			RunsPerSec  float64 `json:"runs_per_sec"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("bench report not valid JSON: %v\n%s", err, raw)
	}
	if report.GOMAXPROCS < 1 || len(report.Experiments) != 1 {
		t.Fatalf("bench report shape wrong: %+v", report)
	}
	e := report.Experiments[0]
	if e.Experiment != "table1" || e.Units != 6 || e.Speedup <= 0 || e.RunsPerSec <= 0 {
		t.Fatalf("bench row wrong: %+v", e)
	}
}

// TestSchedBenchJSON checks the -schedbench mode: the old-vs-new
// scheduling-core report renders per-discipline decision rates and lands
// as valid JSON (the BENCH_sched.json CI artifact).
func TestSchedBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sched.json")
	var buf bytes.Buffer
	err := run([]string{
		"-schedbench", path, "-racks", "2", "-hosts", "3", "-duration", "0.3",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatalf("schedbench output lacks speedup column:\n%s", buf.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		GOMAXPROCS int     `json:"gomaxprocs"`
		Scale      string  `json:"scale"`
		Load       float64 `json:"load"`
		Schedulers []struct {
			Discipline      string  `json:"discipline"`
			Decisions       int64   `json:"decisions"`
			IncrementalRate float64 `json:"incremental_decisions_per_sec"`
			FromScratchRate float64 `json:"fromscratch_decisions_per_sec"`
			Speedup         float64 `json:"speedup"`
		} `json:"schedulers"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("sched report not valid JSON: %v\n%s", err, raw)
	}
	if report.GOMAXPROCS < 1 || report.Load != 0.8 || len(report.Schedulers) != 4 {
		t.Fatalf("sched report shape wrong: %+v", report)
	}
	for _, row := range report.Schedulers {
		if row.Decisions <= 0 || row.IncrementalRate <= 0 || row.FromScratchRate <= 0 || row.Speedup <= 0 {
			t.Fatalf("sched row not measured: %+v", row)
		}
	}
	if err := run([]string{"-schedbench", path, "-seeds", "2"}, &buf); err == nil {
		t.Fatal("-schedbench with -seeds accepted")
	}
}

// TestMultiSeedRejectsBadFlags pins the multi-seed flag validation.
func TestMultiSeedRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-seeds", "0"}, &buf); err == nil {
		t.Fatal("seeds 0 accepted")
	}
	if err := run([]string{"-exp", "table1", "-benchjson", "x.json"}, &buf); err == nil {
		t.Fatal("-benchjson without -seeds accepted")
	}
	if err := run([]string{"-exp", "stability", "-seeds", "2", "-scale", "small"}, &buf); err == nil {
		t.Fatal("stability-only multi-seed run should fail (no multi-seed form)")
	}
}

func TestObsBenchJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_obs.json")
	var buf bytes.Buffer
	// 24 hosts keeps the decision cost (~1.5µs) far above the probe cost
	// so the 2% bound holds with margin; see core.TestObsBenchOverhead*.
	err := run([]string{
		"-obsbench", path, "-racks", "4", "-hosts", "6", "-duration", "0.05",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Observability overhead") {
		t.Fatalf("missing rendered table:\n%s", buf.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report obsReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("invalid report JSON: %v\n%s", err, raw)
	}
	r := report.Result
	if r == nil || r.Decisions == 0 || !r.Deterministic {
		t.Fatalf("report = %+v", report)
	}
	if r.DisabledOverheadPct <= 0 || r.DisabledOverheadPct > 2 {
		t.Fatalf("disabled overhead %.4f%% outside (0, 2]", r.DisabledOverheadPct)
	}

	// Multi-seed makes no sense for the paired measurement.
	if err := run([]string{"-obsbench", path, "-seeds", "3"}, &buf); err == nil {
		t.Fatal("-obsbench with -seeds accepted")
	}
}

// TestShardBenchJSON checks the -shardbench mode: the shard-scaling
// report renders per-arm decision rates, lands as valid JSON (the
// BENCH_shard.json CI artifact), and the budget gate writes the report
// before failing.
func TestShardBenchJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_shard.json")
	var buf bytes.Buffer
	err := run([]string{
		"-shardbench", path, "-racks", "3", "-hosts", "4", "-duration", "0.01", "-shards", "4",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Shard scaling") {
		t.Fatalf("missing rendered table:\n%s", buf.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report shardReport
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("invalid report JSON: %v\n%s", err, raw)
	}
	if report.GOMAXPROCS < 1 || report.Result == nil || len(report.Result.Rows) != 3 {
		t.Fatalf("report shape wrong: %+v", report)
	}
	for _, row := range report.Result.Rows {
		if row.Decisions <= 0 || row.DecisionsPerSec <= 0 || row.Digest == "" {
			t.Fatalf("shard row not measured: %+v", row)
		}
	}

	// An impossible budget fails the run but still writes the report —
	// CI archives the numbers that tripped the gate.
	budgetPath := filepath.Join(dir, "budget.json")
	if err := os.WriteFile(budgetPath, []byte(`{"min_speedup_at_max_shards": 1e9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	gatedPath := filepath.Join(dir, "BENCH_shard_gated.json")
	err = run([]string{
		"-shardbench", gatedPath, "-racks", "3", "-hosts", "4", "-duration", "0.01",
		"-shardbudget", budgetPath,
	}, &buf)
	if err == nil || !strings.Contains(err.Error(), "shard budget exceeded") {
		t.Fatalf("impossible budget passed: %v", err)
	}
	if _, err := os.Stat(gatedPath); err != nil {
		t.Fatalf("report not written on budget violation: %v", err)
	}

	// Multi-seed makes no sense for the fixed-seed scaling arms.
	if err := run([]string{"-shardbench", path, "-seeds", "2"}, &buf); err == nil {
		t.Fatal("-shardbench with -seeds accepted")
	}
	// A missing budget file is a configuration error.
	if err := run([]string{
		"-shardbench", path, "-racks", "2", "-hosts", "2", "-duration", "0.01",
		"-shardbudget", filepath.Join(dir, "nope.json"),
	}, &buf); err == nil {
		t.Fatal("missing budget file accepted")
	}
}

func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var buf bytes.Buffer
	err := run([]string{
		"-exp", "fig1", "-cpuprofile", cpu, "-memprofile", mem,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}
