// Command basrptbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index):
//
//	basrptbench -exp all -scale medium
//	basrptbench -exp table1 -scale paper      # full 144-host, 500 s run
//	basrptbench -exp fig6 -v 2500
//
// Experiments: fig1, fig2, table1, fig5, fig6, fig7, fig8, theory, dtmc,
// ablation, distributed, incast, noise, faults, all — plus the opt-in
// long-horizon "stability" showcase. Pass -csvdir to also export the
// series/rows as CSV.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"basrpt"
	"basrpt/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "basrptbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("basrptbench", flag.ContinueOnError)
	var (
		exp       = fs.String("exp", "all", "experiment id (fig1|fig2|table1|fig5|fig6|fig7|fig8|theory|dtmc|ablation|distributed|incast|noise|faults|all)")
		scaleName = fs.String("scale", "medium", "experiment scale (small|medium|paper)")
		v         = fs.Float64("v", 0, "BASRPT tradeoff weight V (0 = paper default 2500)")
		seed      = fs.Uint64("seed", 1, "random seed")
		duration  = fs.Float64("duration", 0, "override simulated seconds (0 = scale default)")
		racks     = fs.Int("racks", 0, "override rack count (0 = scale default)")
		hosts     = fs.Int("hosts", 0, "override hosts per rack (0 = scale default)")
		csvDir    = fs.String("csvdir", "", "when set, also export each experiment's series/rows as CSV into this directory")
		faultSeed = fs.Uint64("faultseed", 1, "seed of the faults experiment's fault schedule")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	scale, err := pickScale(*scaleName)
	if err != nil {
		return err
	}
	scale.Seed = *seed
	if *duration > 0 {
		scale.Duration = *duration
	}
	if *racks > 0 {
		scale.Racks = *racks
	}
	if *hosts > 0 {
		scale.HostsPerRack = *hosts
	}

	wanted := strings.Split(*exp, ",")
	selected := map[string]bool{}
	for _, e := range wanted {
		selected[strings.TrimSpace(e)] = true
	}
	all := selected["all"]
	ran := 0
	runExp := func(names []string, fn func() (string, error)) error {
		match := all
		for _, n := range names {
			if selected[n] {
				match = true
			}
		}
		if !match {
			return nil
		}
		start := time.Now()
		out, err := fn()
		if err != nil {
			return fmt.Errorf("%s: %w", names[0], err)
		}
		fmt.Fprintln(w, out)
		fmt.Fprintf(w, "[%s took %s]\n\n", strings.Join(names, "/"), time.Since(start).Round(time.Millisecond))
		ran++
		return nil
	}

	if err := runExp([]string{"fig1"}, func() (string, error) {
		res, err := basrpt.RunFig1()
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if err := runExp([]string{"fig2"}, func() (string, error) {
		res, err := basrpt.RunFig2(scale, 0)
		if err != nil {
			return "", err
		}
		if err := exportSeries(*csvDir, map[string]*basrpt.Series{
			"fig2_srpt_queue":      &res.SRPT.MaxPortSeries,
			"fig2_threshold_queue": &res.Backlog.MaxPortSeries,
		}); err != nil {
			return "", err
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if selected["table1"] || selected["fig5"] || all {
		start := time.Now()
		res, err := basrpt.RunSaturation(scale, *v)
		if err != nil {
			return fmt.Errorf("saturation: %w", err)
		}
		if selected["table1"] || all {
			fmt.Fprintln(w, res.RenderTable1())
		}
		if selected["fig5"] || all {
			fmt.Fprintln(w, res.RenderFig5())
		}
		srptTput := res.SRPT.Throughput.SeriesGbps()
		fastTput := res.Fast.Throughput.SeriesGbps()
		if err := exportSeries(*csvDir, map[string]*basrpt.Series{
			"fig5_srpt_throughput_gbps": &srptTput,
			"fig5_fast_throughput_gbps": &fastTput,
			"fig5_srpt_queue_bytes":     &res.SRPT.MaxPortSeries,
			"fig5_fast_queue_bytes":     &res.Fast.MaxPortSeries,
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "[table1/fig5 took %s]\n\n", time.Since(start).Round(time.Millisecond))
		ran++
	}

	if err := runExp([]string{"fig6"}, func() (string, error) {
		res, err := basrpt.RunFig6(scale, *v, nil)
		if err != nil {
			return "", err
		}
		if *csvDir != "" {
			cols := [][]float64{nil, nil, nil, nil, nil, nil, nil}
			for _, row := range res.Rows {
				cols[0] = append(cols[0], row.Load)
				cols[1] = append(cols[1], row.SRPTQueryAvgMs)
				cols[2] = append(cols[2], row.FastQueryAvgMs)
				cols[3] = append(cols[3], row.SRPTQueryP99Ms)
				cols[4] = append(cols[4], row.FastQueryP99Ms)
				cols[5] = append(cols[5], row.SRPTGbps)
				cols[6] = append(cols[6], row.FastGbps)
			}
			headers := []string{"load", "srpt_query_avg_ms", "fast_query_avg_ms",
				"srpt_query_p99_ms", "fast_query_p99_ms", "srpt_gbps", "fast_gbps"}
			if err := exportColumns(*csvDir, "fig6_loads", headers, cols); err != nil {
				return "", err
			}
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if selected["fig7"] || selected["fig8"] || all {
		start := time.Now()
		res, err := basrpt.RunVSweep(scale, nil)
		if err != nil {
			return fmt.Errorf("vsweep: %w", err)
		}
		if selected["fig7"] || all {
			fmt.Fprintln(w, res.RenderFig7())
		}
		if selected["fig8"] || all {
			fmt.Fprintln(w, res.RenderFig8())
		}
		if *csvDir != "" {
			cols := [][]float64{nil, nil, nil, nil, nil, nil, nil}
			for _, row := range res.Rows {
				cols[0] = append(cols[0], row.V)
				cols[1] = append(cols[1], row.Gbps)
				cols[2] = append(cols[2], row.StableQueueByte)
				cols[3] = append(cols[3], row.QueryAvgMs)
				cols[4] = append(cols[4], row.QueryP99Ms)
				cols[5] = append(cols[5], row.BgAvgMs)
				cols[6] = append(cols[6], row.BgP99Ms)
			}
			headers := []string{"v", "gbps", "stable_queue_bytes",
				"query_avg_ms", "query_p99_ms", "bg_avg_ms", "bg_p99_ms"}
			if err := exportColumns(*csvDir, "fig7_fig8_vsweep", headers, cols); err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "[fig7/fig8 took %s]\n\n", time.Since(start).Round(time.Millisecond))
		ran++
	}

	if err := runExp([]string{"theory"}, func() (string, error) {
		res, err := basrpt.RunTheorem1(4, 0.85, 200000, nil, *seed)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if err := runExp([]string{"dtmc"}, func() (string, error) {
		res, err := basrpt.RunDTMC(0, 0)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if err := runExp([]string{"ablation"}, func() (string, error) {
		res, err := basrpt.RunExactVsFast(5, 200, pickV(*v), *seed)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if err := runExp([]string{"distributed"}, func() (string, error) {
		res, err := basrpt.RunDistributed(8, 200, pickV(*v), nil, *seed)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	// The stability showcase needs a long horizon (minutes of wall time),
	// so it is opt-in rather than part of -exp all.
	if selected["stability"] {
		start := time.Now()
		s := scale
		if s.Duration < 40 {
			s.Duration = 40
		}
		res, err := basrpt.RunStability(s, *v)
		if err != nil {
			return fmt.Errorf("stability: %w", err)
		}
		fmt.Fprintln(w, res.RenderStability())
		if err := exportSeries(*csvDir, map[string]*basrpt.Series{
			"stability_srpt_queue_bytes": &res.SRPT.MaxPortSeries,
			"stability_fast_queue_bytes": &res.Fast.MaxPortSeries,
		}); err != nil {
			return fmt.Errorf("stability csv: %w", err)
		}
		fmt.Fprintf(w, "[stability took %s]\n\n", time.Since(start).Round(time.Millisecond))
		ran++
	}

	if err := runExp([]string{"incast"}, func() (string, error) {
		res, err := basrpt.RunIncast(scale, *v, 0, 0, 0)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if err := runExp([]string{"faults"}, func() (string, error) {
		res, err := basrpt.RunFaults(scale, *v, *faultSeed)
		if err != nil {
			return "", err
		}
		if err := exportSeries(*csvDir, map[string]*basrpt.Series{
			"faults_srpt_backlog_bytes": &res.SRPT.Result.TotalBacklogSeries,
			"faults_fast_backlog_bytes": &res.Fast.Result.TotalBacklogSeries,
		}); err != nil {
			return "", err
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if err := runExp([]string{"noise"}, func() (string, error) {
		res, err := basrpt.RunNoise(scale, *v, 0.8, nil)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}

// exportSeries writes each named series as <dir>/<name>.csv; a no-op when
// dir is empty.
func exportSeries(dir string, series map[string]*basrpt.Series) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create csv dir: %w", err)
	}
	for name, s := range series {
		path := filepath.Join(dir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		writeErr := trace.WriteSeriesCSV(f, name, s)
		closeErr := f.Close()
		if writeErr != nil {
			return fmt.Errorf("write %s: %w", path, writeErr)
		}
		if closeErr != nil {
			return fmt.Errorf("close %s: %w", path, closeErr)
		}
	}
	return nil
}

// exportColumns writes aligned columns as <dir>/<name>.csv; a no-op when
// dir is empty.
func exportColumns(dir, name string, headers []string, cols [][]float64) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create csv dir: %w", err)
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	writeErr := trace.WriteColumnsCSV(f, headers, cols)
	closeErr := f.Close()
	if writeErr != nil {
		return fmt.Errorf("write %s: %w", path, writeErr)
	}
	if closeErr != nil {
		return fmt.Errorf("close %s: %w", path, closeErr)
	}
	return nil
}

func pickScale(name string) (basrpt.Scale, error) {
	switch name {
	case "small":
		return basrpt.ScaleSmall, nil
	case "medium":
		return basrpt.ScaleMedium, nil
	case "paper":
		return basrpt.ScalePaper, nil
	default:
		return basrpt.Scale{}, fmt.Errorf("unknown scale %q (small|medium|paper)", name)
	}
}

func pickV(v float64) float64 {
	if v <= 0 {
		return basrpt.DefaultV
	}
	return v
}
