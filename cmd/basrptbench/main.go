// Command basrptbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index):
//
//	basrptbench -exp all -scale medium
//	basrptbench -exp table1 -scale paper      # full 144-host, 500 s run
//	basrptbench -exp fig6 -v 2500
//	basrptbench -exp table1 -seeds 5 -parallel 4   # 5-seed aggregate with ±ci
//
// Experiments: fig1, fig2, table1, fig5, fig6, fig7, fig8, theory, dtmc,
// ablation, distributed, incast, noise, faults, all — plus the opt-in
// long-horizon "stability" showcase. Pass -csvdir to also export the
// series/rows as CSV.
//
// With -seeds N (N > 1) every experiment runs N independent replicates on
// up to -parallel workers and reports per-metric mean, ±95% confidence
// interval, stddev, min, and max instead of the single-seed tables. The
// aggregates are byte-identical for any -parallel value. Pass -benchjson
// to also time a serial rerun and write a speedup report (the
// benchmark-regression artifact BENCH_runner.json).
//
// With -schedbench PATH the tool skips the experiments and instead times
// the incremental scheduling core against the from-scratch baseline on
// byte-identical runs at 0.8 load, writing decisions/sec and speedup per
// discipline to PATH (the CI artifact BENCH_sched.json).
//
// With -obsbench PATH the tool instead measures the observability layer:
// disabled-path probe overhead against the per-decision scheduling cost
// (budget: 2%) and trace byte-determinism, written to PATH (the CI
// artifact BENCH_obs.json).
//
// With -allocbench PATH the tool instead measures steady-state allocator
// pressure: bytes and allocations per scheduling decision and GC cycles
// per million decisions, pooled default versus the non-pooled baseline on
// byte-identical runs, written to PATH (the CI artifact BENCH_alloc.json).
// Pass -allocbudget FILE to fail the run when allocs/decision exceeds the
// checked-in budget (the CI allocation gate).
//
// With -shardbench PATH the tool instead benchmarks the sharded fabric
// engine: the centralized 1-shard simulator against rack-decomposed arms
// doubling up to -shards, reporting decisions/sec, speedup, parallel
// speedup (widest arm vs 2 shards), and the per-arm barrier/imbalance
// attribution to PATH (the CI artifact BENCH_shard.json). Pass
// -shardbudget FILE to fail the run when the widest arm misses the
// checked-in scaling floor, -centralized-duration SEC to cap the slow
// centralized arm's horizon, and -barrier-every K to batch K lookahead
// windows per coordinator barrier in the decomposed arms.
//
// Profiling: -cpuprofile/-memprofile write pprof profiles around whatever
// work the other flags select; -pprof ADDR serves net/http/pprof for live
// inspection of long runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"basrpt"
	"basrpt/internal/core"
	"basrpt/internal/runner"
	"basrpt/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "basrptbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("basrptbench", flag.ContinueOnError)
	var (
		exp       = fs.String("exp", "all", "experiment id (fig1|fig2|table1|fig5|fig6|fig7|fig8|theory|dtmc|ablation|distributed|incast|noise|faults|all)")
		scaleName = fs.String("scale", "medium", "experiment scale (small|medium|paper)")
		v         = fs.Float64("v", 0, "BASRPT tradeoff weight V (0 = paper default 2500)")
		seed      = fs.Uint64("seed", 1, "random seed")
		duration  = fs.Float64("duration", 0, "override simulated seconds (0 = scale default)")
		racks     = fs.Int("racks", 0, "override rack count (0 = scale default)")
		hosts     = fs.Int("hosts", 0, "override hosts per rack (0 = scale default)")
		csvDir    = fs.String("csvdir", "", "when set, also export each experiment's series/rows as CSV into this directory")
		faultSeed = fs.Uint64("faultseed", 1, "seed of the faults experiment's fault schedule")
		seeds     = fs.Int("seeds", 1, "independent replicates per experiment; > 1 switches to aggregated ±ci output")
		parallel  = fs.Int("parallel", 0, "worker count for multi-seed runs (0 = GOMAXPROCS)")
		benchJSON = fs.String("benchjson", "", "multi-seed only: also rerun serially and write a runs/sec + speedup report to this path")
		schedJSON = fs.String("schedbench", "", "instead of experiments: benchmark the incremental scheduling core against the from-scratch baseline at this scale (load 0.8) and write decisions/sec + speedup to this path")
		obsJSON   = fs.String("obsbench", "", "instead of experiments: measure observability overhead + trace determinism at this scale (load 0.8) and write the report to this path")
		obsBudg   = fs.String("obsbudget", "", "with -obsbench: JSON budget file (max_disabled_overhead_pct, require_deterministic); exceeding it fails the run")
		allocJSON = fs.String("allocbench", "", "instead of experiments: measure steady-state allocations/GC per decision (pooled vs non-pooled byte-identical runs, load 0.8) and write the report to this path")
		allocBudg = fs.String("allocbudget", "", "with -allocbench: JSON budget file (max_allocs_per_decision, max_alloc_bytes_per_decision); exceeding it fails the run")
		shardJSON = fs.String("shardbench", "", "instead of experiments: benchmark the sharded fabric engine across shard counts at this scale (load 0.5) and write decisions/sec + speedup to this path")
		shards    = fs.Int("shards", 4, "with -shardbench: widest shard count (arms double from 2 up to this)")
		shardBudg = fs.String("shardbudget", "", "with -shardbench: JSON budget file (min_speedup_at_max_shards, min_parallel_speedup); missing the floor fails the run")
		centDur   = fs.Float64("centralized-duration", 0, "with -shardbench: cap the centralized arm's simulated horizon in seconds (0 = full -duration); decomposed arms always run the full horizon")
		barrier   = fs.Int("barrier-every", 0, "with -shardbench: windows per coordinator barrier for the decomposed arms (0 = engine default)")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile of the selected work to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile (after the selected work) to this file")
		pprofAddr = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while the work runs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seeds < 1 {
		return fmt.Errorf("seeds %d < 1", *seeds)
	}

	if *pprofAddr != "" {
		go func() {
			// The DefaultServeMux carries the net/http/pprof handlers; the
			// server dies with the process, so errors are only reportable.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "basrptbench: pprof server:", err)
			}
		}()
		fmt.Fprintf(w, "[pprof serving on http://%s/debug/pprof/]\n", *pprofAddr)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "basrptbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "basrptbench: memprofile:", err)
			}
		}()
	}

	scale, err := pickScale(*scaleName)
	if err != nil {
		return err
	}
	scale.Seed = *seed
	if *duration > 0 {
		scale.Duration = *duration
	}
	if *racks > 0 {
		scale.Racks = *racks
	}
	if *hosts > 0 {
		scale.HostsPerRack = *hosts
	}

	if *schedJSON != "" {
		if *seeds > 1 {
			return fmt.Errorf("-schedbench runs single-seed pairs (drop -seeds)")
		}
		return runSchedBench(w, scale, *schedJSON)
	}
	if *obsJSON != "" {
		if *seeds > 1 {
			return fmt.Errorf("-obsbench runs single-seed pairs (drop -seeds)")
		}
		return runObsBench(w, scale, *obsJSON, *obsBudg)
	}
	if *allocJSON != "" {
		if *seeds > 1 {
			return fmt.Errorf("-allocbench runs single-seed pairs (drop -seeds)")
		}
		return runAllocBench(w, scale, *allocJSON, *allocBudg)
	}
	if *shardJSON != "" {
		if *seeds > 1 {
			return fmt.Errorf("-shardbench runs single-seed arms (drop -seeds)")
		}
		return runShardBench(w, scale, basrpt.ShardBenchOptions{
			MaxShards:           *shards,
			CentralizedDuration: *centDur,
			BarrierEvery:        *barrier,
		}, *shardJSON, *shardBudg)
	}

	wanted := strings.Split(*exp, ",")
	selected := map[string]bool{}
	for _, e := range wanted {
		selected[strings.TrimSpace(e)] = true
	}
	all := selected["all"]

	if *seeds > 1 {
		return runMultiSeed(w, multiParams{
			scale:     scale,
			v:         *v,
			selected:  selected,
			all:       all,
			csvDir:    *csvDir,
			cfg:       runner.Config{Seeds: *seeds, Parallel: *parallel, RootSeed: *seed},
			benchJSON: *benchJSON,
		})
	}
	if *benchJSON != "" {
		return fmt.Errorf("-benchjson needs -seeds > 1 (it reports multi-seed speedup)")
	}

	ran := 0
	runExp := func(names []string, fn func() (string, error)) error {
		match := all
		for _, n := range names {
			if selected[n] {
				match = true
			}
		}
		if !match {
			return nil
		}
		start := time.Now()
		out, err := fn()
		if err != nil {
			return fmt.Errorf("%s: %w", names[0], err)
		}
		fmt.Fprintln(w, out)
		fmt.Fprintf(w, "[%s took %s]\n\n", strings.Join(names, "/"), time.Since(start).Round(time.Millisecond))
		ran++
		return nil
	}

	if err := runExp([]string{"fig1"}, func() (string, error) {
		res, err := basrpt.RunFig1()
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if err := runExp([]string{"fig2"}, func() (string, error) {
		res, err := basrpt.RunFig2(scale, 0)
		if err != nil {
			return "", err
		}
		if err := exportSeries(*csvDir, map[string]*basrpt.Series{
			"fig2_srpt_queue":      &res.SRPT.MaxPortSeries,
			"fig2_threshold_queue": &res.Backlog.MaxPortSeries,
		}); err != nil {
			return "", err
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if selected["table1"] || selected["fig5"] || all {
		start := time.Now()
		res, err := basrpt.RunSaturation(scale, *v)
		if err != nil {
			return fmt.Errorf("saturation: %w", err)
		}
		if selected["table1"] || all {
			fmt.Fprintln(w, res.RenderTable1())
		}
		if selected["fig5"] || all {
			fmt.Fprintln(w, res.RenderFig5())
		}
		srptTput := res.SRPT.Throughput.SeriesGbps()
		fastTput := res.Fast.Throughput.SeriesGbps()
		if err := exportSeries(*csvDir, map[string]*basrpt.Series{
			"fig5_srpt_throughput_gbps": &srptTput,
			"fig5_fast_throughput_gbps": &fastTput,
			"fig5_srpt_queue_bytes":     &res.SRPT.MaxPortSeries,
			"fig5_fast_queue_bytes":     &res.Fast.MaxPortSeries,
		}); err != nil {
			return err
		}
		fmt.Fprintf(w, "[table1/fig5 took %s]\n\n", time.Since(start).Round(time.Millisecond))
		ran++
	}

	if err := runExp([]string{"fig6"}, func() (string, error) {
		res, err := basrpt.RunFig6(scale, *v, nil)
		if err != nil {
			return "", err
		}
		if *csvDir != "" {
			cols := [][]float64{nil, nil, nil, nil, nil, nil, nil}
			for _, row := range res.Rows {
				cols[0] = append(cols[0], row.Load)
				cols[1] = append(cols[1], row.SRPTQueryAvgMs)
				cols[2] = append(cols[2], row.FastQueryAvgMs)
				cols[3] = append(cols[3], row.SRPTQueryP99Ms)
				cols[4] = append(cols[4], row.FastQueryP99Ms)
				cols[5] = append(cols[5], row.SRPTGbps)
				cols[6] = append(cols[6], row.FastGbps)
			}
			headers := []string{"load", "srpt_query_avg_ms", "fast_query_avg_ms",
				"srpt_query_p99_ms", "fast_query_p99_ms", "srpt_gbps", "fast_gbps"}
			if err := exportColumns(*csvDir, "fig6_loads", headers, cols); err != nil {
				return "", err
			}
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if selected["fig7"] || selected["fig8"] || all {
		start := time.Now()
		res, err := basrpt.RunVSweep(scale, nil)
		if err != nil {
			return fmt.Errorf("vsweep: %w", err)
		}
		if selected["fig7"] || all {
			fmt.Fprintln(w, res.RenderFig7())
		}
		if selected["fig8"] || all {
			fmt.Fprintln(w, res.RenderFig8())
		}
		if *csvDir != "" {
			cols := [][]float64{nil, nil, nil, nil, nil, nil, nil}
			for _, row := range res.Rows {
				cols[0] = append(cols[0], row.V)
				cols[1] = append(cols[1], row.Gbps)
				cols[2] = append(cols[2], row.StableQueueByte)
				cols[3] = append(cols[3], row.QueryAvgMs)
				cols[4] = append(cols[4], row.QueryP99Ms)
				cols[5] = append(cols[5], row.BgAvgMs)
				cols[6] = append(cols[6], row.BgP99Ms)
			}
			headers := []string{"v", "gbps", "stable_queue_bytes",
				"query_avg_ms", "query_p99_ms", "bg_avg_ms", "bg_p99_ms"}
			if err := exportColumns(*csvDir, "fig7_fig8_vsweep", headers, cols); err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "[fig7/fig8 took %s]\n\n", time.Since(start).Round(time.Millisecond))
		ran++
	}

	if err := runExp([]string{"theory"}, func() (string, error) {
		res, err := basrpt.RunTheorem1(4, 0.85, 200000, nil, basrpt.SeedRun(*seed))
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if err := runExp([]string{"dtmc"}, func() (string, error) {
		res, err := basrpt.RunDTMC(0, 0)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if err := runExp([]string{"ablation"}, func() (string, error) {
		res, err := basrpt.RunExactVsFast(5, 200, pickV(*v), basrpt.SeedRun(*seed))
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if err := runExp([]string{"distributed"}, func() (string, error) {
		res, err := basrpt.RunDistributed(8, 200, pickV(*v), nil, basrpt.SeedRun(*seed))
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	// The stability showcase needs a long horizon (minutes of wall time),
	// so it is opt-in rather than part of -exp all.
	if selected["stability"] {
		start := time.Now()
		s := scale
		if s.Duration < 40 {
			s.Duration = 40
		}
		res, err := basrpt.RunStability(s, *v)
		if err != nil {
			return fmt.Errorf("stability: %w", err)
		}
		fmt.Fprintln(w, res.RenderStability())
		if err := exportSeries(*csvDir, map[string]*basrpt.Series{
			"stability_srpt_queue_bytes": &res.SRPT.MaxPortSeries,
			"stability_fast_queue_bytes": &res.Fast.MaxPortSeries,
		}); err != nil {
			return fmt.Errorf("stability csv: %w", err)
		}
		fmt.Fprintf(w, "[stability took %s]\n\n", time.Since(start).Round(time.Millisecond))
		ran++
	}

	if err := runExp([]string{"incast"}, func() (string, error) {
		res, err := basrpt.RunIncast(scale, *v, 0, 0, 0)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if err := runExp([]string{"faults"}, func() (string, error) {
		res, err := basrpt.RunFaults(scale, *v, basrpt.Run{Seed: *seed, FaultSeed: *faultSeed})
		if err != nil {
			return "", err
		}
		if err := exportSeries(*csvDir, map[string]*basrpt.Series{
			"faults_srpt_backlog_bytes": &res.SRPT.Result.TotalBacklogSeries,
			"faults_fast_backlog_bytes": &res.Fast.Result.TotalBacklogSeries,
		}); err != nil {
			return "", err
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if err := runExp([]string{"noise"}, func() (string, error) {
		res, err := basrpt.RunNoise(scale, *v, 0.8, nil)
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	}); err != nil {
		return err
	}

	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}

// multiParams carries the -seeds > 1 configuration into the multi-seed
// path.
type multiParams struct {
	scale     basrpt.Scale
	v         float64
	selected  map[string]bool
	all       bool
	csvDir    string
	cfg       runner.Config
	benchJSON string
}

// benchExperiment is one row of the benchmark-regression report: the
// parallel run's throughput and its speedup over a serial rerun of the
// identical work.
type benchExperiment struct {
	Experiment  string  `json:"experiment"`
	Seeds       int     `json:"seeds"`
	Parallel    int     `json:"parallel"`
	Units       int     `json:"units"`
	ParallelSec float64 `json:"parallel_sec"`
	SerialSec   float64 `json:"serial_sec"`
	Speedup     float64 `json:"speedup"`
	RunsPerSec  float64 `json:"runs_per_sec"`
}

// benchReport is the -benchjson artifact (BENCH_runner.json in CI).
type benchReport struct {
	GOMAXPROCS  int               `json:"gomaxprocs"`
	Experiments []benchExperiment `json:"experiments"`
}

// schedReport is the -schedbench artifact (BENCH_sched.json in CI): the
// measured decision rate of every index-routed discipline with the
// incremental candidate index on versus forced from-scratch, so the perf
// trajectory of the scheduling core is tracked across commits.
type schedReport struct {
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Scale      string                 `json:"scale"`
	Load       float64                `json:"load"`
	Schedulers []basrpt.SchedBenchRow `json:"schedulers"`
}

// runSchedBench is the -schedbench path: old-vs-new scheduling-core pairs
// on byte-identical runs, rendered as a table and written as JSON.
func runSchedBench(w io.Writer, scale basrpt.Scale, path string) error {
	start := time.Now()
	res, err := basrpt.RunSchedBench(scale, 0)
	if err != nil {
		return fmt.Errorf("schedbench: %w", err)
	}
	fmt.Fprintln(w, res.Render())
	fmt.Fprintf(w, "[schedbench took %s]\n", time.Since(start).Round(time.Millisecond))
	report := schedReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      res.Scale.String(),
		Load:       res.Load,
		Schedulers: res.Rows,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("schedbench: marshal: %w", err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("schedbench: %w", err)
	}
	fmt.Fprintf(w, "[sched report written to %s]\n", path)
	return nil
}

// obsReport is the -obsbench artifact (BENCH_obs.json in CI): the
// observability layer's disabled-path overhead against the per-decision
// scheduling cost, plus the trace byte-determinism verdict.
type obsReport struct {
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Scale      string                 `json:"scale"`
	Budget     *basrpt.ObsBudget      `json:"budget,omitempty"`
	Result     *basrpt.ObsBenchResult `json:"result"`
}

// runObsBench is the -obsbench path: overhead + determinism measurement,
// rendered as a table, written as JSON, and checked against the budget
// file when one is given (the CI observability gate).
func runObsBench(w io.Writer, scale basrpt.Scale, path, budgetPath string) error {
	start := time.Now()
	res, err := basrpt.RunObsBench(scale, 0)
	if err != nil {
		return fmt.Errorf("obsbench: %w", err)
	}
	fmt.Fprintln(w, res.Render())
	fmt.Fprintf(w, "[obsbench took %s]\n", time.Since(start).Round(time.Millisecond))
	report := obsReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale.String(),
		Result:     res,
	}
	var budgetErr error
	if budgetPath != "" {
		raw, err := os.ReadFile(budgetPath)
		if err != nil {
			return fmt.Errorf("obsbench: budget: %w", err)
		}
		var budget basrpt.ObsBudget
		if err := json.Unmarshal(raw, &budget); err != nil {
			return fmt.Errorf("obsbench: budget %s: %w", budgetPath, err)
		}
		report.Budget = &budget
		// Write the report even on a violation, so CI archives the numbers
		// that failed the gate.
		budgetErr = res.CheckBudget(budget)
	} else if !res.Deterministic {
		budgetErr = fmt.Errorf("traced fixed-seed runs were not byte-identical")
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("obsbench: marshal: %w", err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("obsbench: %w", err)
	}
	fmt.Fprintf(w, "[obs report written to %s]\n", path)
	if budgetErr != nil {
		return fmt.Errorf("obsbench: %w", budgetErr)
	}
	if budgetPath != "" {
		fmt.Fprintf(w, "[obs budget OK: <= %.2f%% disabled overhead, determinism required: %v]\n",
			report.Budget.MaxDisabledOverheadPct, report.Budget.RequireDeterministic)
	}
	return nil
}

// allocReport is the -allocbench artifact (BENCH_alloc.json in CI): the
// steady-state allocator pressure of the hot path — bytes and allocations
// per decision, GC cycles per million decisions — for the pooled default
// against the non-pooled baseline on byte-identical runs, plus the budget
// the run was gated on (when one was supplied).
type allocReport struct {
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Scale      string                 `json:"scale"`
	Load       float64                `json:"load"`
	Budget     *basrpt.AllocBudget    `json:"budget,omitempty"`
	Schedulers []basrpt.AllocBenchRow `json:"schedulers"`
}

// runAllocBench is the -allocbench path: pooled-vs-baseline allocation
// pairs on byte-identical runs, rendered as a table, written as JSON, and
// checked against the budget file when one is given (the CI gate).
func runAllocBench(w io.Writer, scale basrpt.Scale, path, budgetPath string) error {
	start := time.Now()
	res, err := basrpt.RunAllocBench(scale, 0)
	if err != nil {
		return fmt.Errorf("allocbench: %w", err)
	}
	fmt.Fprintln(w, res.Render())
	fmt.Fprintf(w, "[allocbench took %s]\n", time.Since(start).Round(time.Millisecond))
	report := allocReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      res.Scale.String(),
		Load:       res.Load,
		Schedulers: res.Rows,
	}
	var budgetErr error
	if budgetPath != "" {
		raw, err := os.ReadFile(budgetPath)
		if err != nil {
			return fmt.Errorf("allocbench: budget: %w", err)
		}
		var budget basrpt.AllocBudget
		if err := json.Unmarshal(raw, &budget); err != nil {
			return fmt.Errorf("allocbench: budget %s: %w", budgetPath, err)
		}
		report.Budget = &budget
		// Write the report even on a violation, so CI archives the numbers
		// that failed the gate.
		budgetErr = res.CheckBudget(budget)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("allocbench: marshal: %w", err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("allocbench: %w", err)
	}
	fmt.Fprintf(w, "[alloc report written to %s]\n", path)
	if budgetErr != nil {
		return fmt.Errorf("allocbench: %w", budgetErr)
	}
	if budgetPath != "" {
		fmt.Fprintf(w, "[alloc budget OK: <= %.2f allocs/decision, <= %.0f bytes/decision]\n",
			report.Budget.MaxAllocsPerDecision, report.Budget.MaxAllocBytesPerDecision)
	}
	return nil
}

// shardReport is the -shardbench artifact (BENCH_shard.json in CI): the
// sharded fabric engine's decision throughput per shard count — the
// centralized 1-shard arm against rack-decomposed arms — plus the
// scaling budget the run was gated on (when one was supplied).
type shardReport struct {
	GOMAXPROCS int                      `json:"gomaxprocs"`
	Budget     *basrpt.ShardBudget      `json:"budget,omitempty"`
	Result     *basrpt.ShardBenchResult `json:"result"`
}

// runShardBench is the -shardbench path: shard-scaling arms on one
// topology, rendered as a table, written as JSON, and checked against
// the budget file when one is given (the CI scaling gate).
func runShardBench(w io.Writer, scale basrpt.Scale, opts basrpt.ShardBenchOptions, path, budgetPath string) error {
	start := time.Now()
	res, err := basrpt.RunShardBench(scale, opts)
	if err != nil {
		return fmt.Errorf("shardbench: %w", err)
	}
	fmt.Fprintln(w, res.Render())
	fmt.Fprintf(w, "[shardbench took %s]\n", time.Since(start).Round(time.Millisecond))
	report := shardReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Result:     res,
	}
	var budgetErr error
	if budgetPath != "" {
		raw, err := os.ReadFile(budgetPath)
		if err != nil {
			return fmt.Errorf("shardbench: budget: %w", err)
		}
		var budget basrpt.ShardBudget
		if err := json.Unmarshal(raw, &budget); err != nil {
			return fmt.Errorf("shardbench: budget %s: %w", budgetPath, err)
		}
		report.Budget = &budget
		// Write the report even on a violation, so CI archives the numbers
		// that failed the gate.
		budgetErr = res.CheckBudget(budget)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("shardbench: marshal: %w", err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("shardbench: %w", err)
	}
	fmt.Fprintf(w, "[shard report written to %s]\n", path)
	if budgetErr != nil {
		return fmt.Errorf("shardbench: %w", budgetErr)
	}
	if budgetPath != "" {
		fmt.Fprintf(w, "[shard budget OK: >= %.2fx decisions/sec at %d shards vs centralized]\n",
			report.Budget.MinSpeedupAtMaxShards, res.Rows[len(res.Rows)-1].Shards)
	}
	return nil
}

// runMultiSeed is the -seeds > 1 path: every selected experiment fans its
// replicates across the worker pool and prints a per-metric mean/±ci95
// aggregate instead of the single-seed tables. Timing lines are bracketed
// so they can be stripped when comparing outputs across worker counts.
func runMultiSeed(w io.Writer, p multiParams) error {
	type timedRun struct {
		spec core.MultiSpec
		agg  *runner.Aggregate
	}
	var runs []timedRun
	for _, spec := range core.MultiSpecs() {
		match := p.all
		for _, n := range spec.Names {
			if p.selected[n] {
				match = true
			}
		}
		if !match {
			continue
		}
		agg, err := basrpt.RunMulti(spec.Names[0], p.scale, p.v, p.cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", spec.Names[0], err)
		}
		fmt.Fprintln(w, agg.Render(spec.Title))
		fmt.Fprintf(w, "[%s took %s on %d workers, %.2f runs/s]\n\n",
			strings.Join(spec.Names, "/"), agg.Elapsed.Round(time.Millisecond),
			agg.Parallel, agg.RunsPerSec())
		if err := exportAggregate(p.csvDir, "multi_"+spec.Names[0], agg); err != nil {
			return err
		}
		runs = append(runs, timedRun{spec: spec, agg: agg})
	}
	if p.selected["stability"] {
		fmt.Fprintln(w, "stability: no multi-seed form (its value is one long trajectory); rerun with -seeds 1")
	}
	if len(runs) == 0 {
		return fmt.Errorf("no selected experiment has a multi-seed form")
	}
	if p.benchJSON == "" {
		return nil
	}

	// Benchmark-regression artifact: rerun each aggregate on one worker
	// and report wall-time speedup plus parallel runs/sec.
	report := benchReport{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, r := range runs {
		serialCfg := p.cfg
		serialCfg.Parallel = 1
		serial, err := basrpt.RunMulti(r.spec.Names[0], p.scale, p.v, serialCfg)
		if err != nil {
			return fmt.Errorf("%s serial rerun: %w", r.spec.Names[0], err)
		}
		row := benchExperiment{
			Experiment:  r.spec.Names[0],
			Seeds:       p.cfg.Seeds,
			Parallel:    r.agg.Parallel,
			Units:       r.agg.Units,
			ParallelSec: r.agg.Elapsed.Seconds(),
			SerialSec:   serial.Elapsed.Seconds(),
			RunsPerSec:  r.agg.RunsPerSec(),
		}
		if row.ParallelSec > 0 {
			row.Speedup = row.SerialSec / row.ParallelSec
		}
		report.Experiments = append(report.Experiments, row)
		fmt.Fprintf(w, "[bench %s: serial %.3fs, parallel %.3fs, speedup %.2fx]\n",
			row.Experiment, row.SerialSec, row.ParallelSec, row.Speedup)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return fmt.Errorf("benchjson: marshal: %w", err)
	}
	if err := os.WriteFile(p.benchJSON, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("benchjson: %w", err)
	}
	fmt.Fprintf(w, "[bench report written to %s]\n", p.benchJSON)
	return nil
}

// exportAggregate writes a multi-seed aggregate as <dir>/<name>.csv; a
// no-op when dir is empty.
func exportAggregate(dir, name string, agg *runner.Aggregate) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create csv dir: %w", err)
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	writeErr := agg.WriteCSV(f)
	closeErr := f.Close()
	if writeErr != nil {
		return fmt.Errorf("write %s: %w", path, writeErr)
	}
	if closeErr != nil {
		return fmt.Errorf("close %s: %w", path, closeErr)
	}
	return nil
}

// exportSeries writes each named series as <dir>/<name>.csv; a no-op when
// dir is empty.
func exportSeries(dir string, series map[string]*basrpt.Series) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create csv dir: %w", err)
	}
	for name, s := range series {
		path := filepath.Join(dir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		writeErr := trace.WriteSeriesCSV(f, name, s)
		closeErr := f.Close()
		if writeErr != nil {
			return fmt.Errorf("write %s: %w", path, writeErr)
		}
		if closeErr != nil {
			return fmt.Errorf("close %s: %w", path, closeErr)
		}
	}
	return nil
}

// exportColumns writes aligned columns as <dir>/<name>.csv; a no-op when
// dir is empty.
func exportColumns(dir, name string, headers []string, cols [][]float64) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create csv dir: %w", err)
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	writeErr := trace.WriteColumnsCSV(f, headers, cols)
	closeErr := f.Close()
	if writeErr != nil {
		return fmt.Errorf("write %s: %w", path, writeErr)
	}
	if closeErr != nil {
		return fmt.Errorf("close %s: %w", path, closeErr)
	}
	return nil
}

func pickScale(name string) (basrpt.Scale, error) {
	switch name {
	case "small":
		return basrpt.ScaleSmall, nil
	case "medium":
		return basrpt.ScaleMedium, nil
	case "paper":
		return basrpt.ScalePaper, nil
	default:
		return basrpt.Scale{}, fmt.Errorf("unknown scale %q (small|medium|paper)", name)
	}
}

func pickV(v float64) float64 {
	if v <= 0 {
		return basrpt.DefaultV
	}
	return v
}
