# Development targets for the basrpt reproduction.

GO ?= go

.PHONY: all build test race vet bench bench-smoke bench-sched bench-obs bench-alloc bench-shard trace-smoke ops-smoke soak cover experiments stability fuzz scenarios doccheck clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
	GOMAXPROCS=4 $(GO) test -race -run 'TestRunShardDecomposed|TestRunShardBatch|TestRunShardWorkerPool' ./internal/fabricsim/

vet:
	gofmt -l . && $(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Quick regression check of the multi-seed worker pool: a small Table I
# aggregate plus a serial rerun, emitting runs/sec and speedup to
# BENCH_runner.json (uploaded as a CI artifact).
bench-smoke:
	$(GO) run ./cmd/basrptbench -exp table1 -scale small -duration 0.5 \
		-seeds 4 -parallel 4 -benchjson BENCH_runner.json

# Scheduling-core regression check: the BenchmarkSchedule* old-vs-new
# microbenchmarks (N=144 ports, high-load candidate population), then the
# fabric-level pairs on the paper's 144-host topology at 0.8 load —
# incremental candidate index versus forced from-scratch on byte-identical
# runs — emitting decisions/sec and speedup to BENCH_sched.json (uploaded
# as a CI artifact alongside BENCH_runner.json).
bench-sched:
	$(GO) test -run NONE -bench 'BenchmarkSchedule' -benchmem ./internal/sched/
	$(GO) run ./cmd/basrptbench -schedbench BENCH_sched.json \
		-racks 12 -hosts 12 -duration $(SCHEDBENCH_DURATION)

# Simulated horizon of the bench-sched fabric pairs. 20 ms of simulated
# time at 144 hosts is ~38k scheduling decisions per arm.
SCHEDBENCH_DURATION ?= 0.02

# Observability regression check: the internal/obs disabled/enabled
# microbenchmarks, then the paired disabled-vs-enabled fabric runs — which
# assert byte-identical work, measure the disabled-path probe cost against
# the per-decision scheduling cost (budget: 2%), and verify trace
# byte-determinism — emitting the report to BENCH_obs.json (uploaded as a
# CI artifact alongside BENCH_sched.json). The run must stay within the
# checked-in bench_obs_budget.json, or the target fails.
bench-obs:
	$(GO) test -run NONE -bench 'BenchmarkObs' -benchmem ./internal/obs/
	$(GO) run ./cmd/basrptbench -obsbench BENCH_obs.json \
		-obsbudget bench_obs_budget.json \
		-racks 4 -hosts 6 -duration $(OBSBENCH_DURATION)

# Simulated horizon of the bench-obs fabric pairs (four runs total).
OBSBENCH_DURATION ?= 0.1

# GC-pressure regression gate: pooled-vs-baseline fabric runs on the
# paper's 144-host topology at 0.8 load, asserting byte-identical Results
# and measuring allocations and GC cycles per scheduling decision via
# runtime.ReadMemStats deltas around the event loop. The report goes to
# BENCH_alloc.json (uploaded as a CI artifact) and the pooled arm must stay
# within the checked-in bench_alloc_budget.json, or the target fails.
bench-alloc:
	$(GO) run ./cmd/basrptbench -allocbench BENCH_alloc.json \
		-allocbudget bench_alloc_budget.json \
		-racks 12 -hosts 12 -duration $(ALLOCBENCH_DURATION)

# Simulated horizon of the bench-alloc fabric pairs (four runs total).
ALLOCBENCH_DURATION ?= 0.02

# Shard-scaling regression gate: the centralized 1-shard engine versus
# rack-decomposed arms at 2 and 4 shards on a 4128-host (344x12) fabric
# at 0.5 load. Every decomposed arm must report one deterministic digest
# (grouping invariance at scale); the widest arm must beat the
# checked-in bench_shard_budget.json floor over the centralized arm and
# (on >= 4-CPU machines) must not fall behind the 2-shard arm
# (min_parallel_speedup), or the target fails. The report — including
# per-arm windows-per-barrier and the worker/cell imbalance table — goes
# to BENCH_shard.json (uploaded as a CI artifact).
bench-shard:
	$(GO) run ./cmd/basrptbench -shardbench BENCH_shard.json \
		-shardbudget bench_shard_budget.json \
		-racks 344 -hosts 12 -duration $(SHARDBENCH_DURATION) \
		-centralized-duration $(SHARDBENCH_CENTRALIZED_DURATION)

# Simulated horizon of the bench-shard arms. 2 ms at 4128 hosts is ~62k
# scheduling decisions on the centralized arm, whose O(hosts^2)
# fabric-global matching dominates the wall time (~21 s for the full
# horizon vs ~0.3 s per decomposed arm) — so the centralized arm runs a
# quarter-horizon cap by default: decisions/sec converges well within it
# and the decomposed arms still run (and digest-check) the full horizon.
SHARDBENCH_DURATION ?= 0.002
SHARDBENCH_CENTRALIZED_DURATION ?= 0.0005

# Trace-export smoke check: two fixed-seed traced runs must produce
# byte-identical JSONL (the determinism contract CI also enforces).
trace-smoke:
	$(GO) run ./cmd/basrptsim -racks 2 -hosts 3 -duration 0.3 -load 0.6 \
		-seed 42 -trace trace_smoke_a.jsonl
	$(GO) run ./cmd/basrptsim -racks 2 -hosts 3 -duration 0.3 -load 0.6 \
		-seed 42 -trace trace_smoke_b.jsonl
	cmp trace_smoke_a.jsonl trace_smoke_b.jsonl
	@echo "trace determinism OK: $$(wc -c < trace_smoke_a.jsonl) bytes, byte-identical across runs"

# Live-ops smoke: start a sharded run with -ops, poll /metrics and
# /progress mid-flight and assert they are well-formed, then validate the
# -timeline Chrome trace_event export. Artifacts land in ops_smoke_out/
# (kept on failure for the CI upload).
ops-smoke:
	bash scripts/ops_smoke.sh

# Checkpoint/restore soak: halt runs at a mid-run checkpoint, resume in a
# fresh process, and require byte-identical summaries and traces versus
# the uninterrupted runs — per seed, with and without fault injection.
# Artifacts land in soak_out/ (kept on failure for the CI upload).
soak:
	bash scripts/soak.sh

cover:
	$(GO) test -cover ./...

# Regenerate every paper table/figure at the default (medium) scale.
experiments:
	$(GO) run ./cmd/basrptbench -exp all -scale medium

# The long-horizon stability showcase (several minutes of wall time).
stability:
	$(GO) run ./cmd/basrptbench -exp stability -racks 2 -hosts 6 -duration 120 -csvdir results

# Scenario-library regression gate: rerun every spec under scenarios/ and
# byte-compare the regenerated findings.json + FINDINGS.md against the
# committed files (they are byte-deterministic at any -parallel value).
# On mismatch the regenerated artifacts land under scenario_out/ for the
# CI upload.
scenarios:
	$(GO) run ./cmd/basrptexp -check -dir scenarios -out scenario_out

# Documentation lint: package comments everywhere, command comments on
# every cmd, and doc comments on every exported internal/scenario symbol.
doccheck:
	bash scripts/doccheck.sh

# Short fuzzing passes over the parsing-adjacent substrates.
fuzz:
	$(GO) test -fuzz FuzzGreedyMaximal -fuzztime 15s ./internal/matching/
	$(GO) test -fuzz FuzzHungarianFeasible -fuzztime 15s ./internal/matching/
	$(GO) test -fuzz FuzzEmpiricalCDFRoundTrip -fuzztime 15s ./internal/stats/
	$(GO) test -fuzz FuzzPercentile -fuzztime 15s ./internal/stats/
	$(GO) test -fuzz FuzzFaultSchedule -fuzztime 15s ./internal/faults/
	$(GO) test -fuzz FuzzReadTrace -fuzztime 15s ./internal/trace/
	$(GO) test -fuzz FuzzCheckpointLoad -fuzztime 15s ./internal/checkpoint/
	$(GO) test -fuzz FuzzParseSpec -fuzztime 15s ./internal/scenario/

clean:
	$(GO) clean ./...
	rm -rf internal/matching/testdata internal/stats/testdata internal/faults/testdata \
		internal/trace/testdata internal/checkpoint/testdata internal/scenario/testdata \
		soak_out scenario_out ops_smoke_out
	rm -f BENCH_runner.json BENCH_sched.json BENCH_obs.json BENCH_alloc.json BENCH_shard.json trace_smoke_a.jsonl trace_smoke_b.jsonl
