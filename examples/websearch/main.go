// Web-search load sweep: compare SRPT and fast BASRPT on the paper's
// web-search workload across loads, printing the Figure 6 style table —
// near-identical FCTs at low load, stability divergence near saturation.
//
//	go run ./examples/websearch
package main

import (
	"fmt"
	"log"

	"basrpt"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scale := basrpt.ScaleSmall
	scale.Duration = 2

	res, err := basrpt.RunFig6(scale, basrpt.DefaultV, []float64{0.2, 0.4, 0.6, 0.8})
	if err != nil {
		return err
	}
	fmt.Print(res.Render())

	// Push into the stability regime: the saturation run behind Table I.
	fmt.Println("\nnear saturation (95% load):")
	sat, err := basrpt.RunSaturation(scale, basrpt.DefaultV)
	if err != nil {
		return err
	}
	fmt.Printf("  srpt:        %.2f Gbps, leftover %.1f MB, queue %s\n",
		sat.SRPT.AverageGbps(), sat.SRPT.LeftoverBytes/1e6, sat.SRPTTrend.Verdict)
	fmt.Printf("  fast-basrpt: %.2f Gbps, leftover %.1f MB, queue %s\n",
		sat.Fast.AverageGbps(), sat.Fast.LeftoverBytes/1e6, sat.FastTrend.Verdict)
	return nil
}
