// Distributed implementation study: the paper argues (Section IV-C) that
// fast BASRPT's global flow priorities admit a distributed implementation
// in the style of pFabric. This example runs the request/grant
// (deferred-acceptance) emulation head-to-head against the centralized
// scheduler — first at the decision level, then end-to-end in the fabric
// simulator — and shows the arbitration-round budget's effect.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"basrpt"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Decision-level agreement per arbitration-round budget.
	res, err := basrpt.RunDistributed(8, 300, basrpt.DefaultV, []int{0, 1, 2, 4, 8}, basrpt.SeedRun(7))
	if err != nil {
		return err
	}
	fmt.Print(res.Render())

	// End-to-end: same workload through the centralized scheduler and the
	// converged distributed emulation must produce identical fabrics.
	topo, err := basrpt.NewTopology(basrpt.ScaledTopology(2, 4))
	if err != nil {
		return err
	}
	runOnce := func(name string) (*basrpt.FabricResult, error) {
		gen, err := basrpt.NewMixedWorkload(basrpt.MixedConfig{
			Topology:          topo,
			Load:              0.8,
			QueryByteFraction: basrpt.DefaultQueryByteFraction,
			Duration:          1,
			Seed:              21,
		})
		if err != nil {
			return nil, err
		}
		scheduler, err := basrpt.NewScheduler(name, basrpt.SchedulerOptions{V: basrpt.DefaultV})
		if err != nil {
			return nil, err
		}
		sim, err := basrpt.NewFabricSim(basrpt.FabricConfig{
			Hosts:     topo.NumHosts(),
			LinkBps:   topo.HostLinkBps(),
			Scheduler: scheduler,
			Generator: gen,
			Duration:  1,
		})
		if err != nil {
			return nil, err
		}
		return sim.Run()
	}

	central, err := runOnce("fast-basrpt")
	if err != nil {
		return err
	}
	dist, err := runOnce("dist-basrpt")
	if err != nil {
		return err
	}
	fmt.Println("\nend-to-end on the same workload:")
	fmt.Printf("  centralized: %d completions, %.2f Gbps, query avg %.3f ms\n",
		central.CompletedFlows, central.AverageGbps(), central.FCT.Stats(basrpt.ClassQuery).MeanMs)
	fmt.Printf("  distributed: %d completions, %.2f Gbps, query avg %.3f ms\n",
		dist.CompletedFlows, dist.AverageGbps(), dist.FCT.Stats(basrpt.ClassQuery).MeanMs)
	if central.CompletedFlows == dist.CompletedFlows && central.DepartedBytes == dist.DepartedBytes {
		fmt.Println("  -> byte-for-byte identical, as the convergence theorem predicts")
	}
	return nil
}
