// Quickstart: simulate a small fabric under fast BASRPT and print the
// flow-completion-time and throughput metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"basrpt"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 2-rack, 8-host fabric with the paper's bandwidth ratios.
	topo, err := basrpt.NewTopology(basrpt.ScaledTopology(2, 4))
	if err != nil {
		return err
	}
	if err := topo.ValidateNonBlocking(); err != nil {
		return err
	}

	// The paper's traffic mix: 20KB queries fanning out across the fabric
	// plus rack-local heavy-tailed background flows, at 80% port load.
	gen, err := basrpt.NewMixedWorkload(basrpt.MixedConfig{
		Topology:          topo,
		Load:              0.8,
		QueryByteFraction: basrpt.DefaultQueryByteFraction,
		Duration:          2,
		Seed:              42,
	})
	if err != nil {
		return err
	}

	sim, err := basrpt.NewFabricSim(basrpt.FabricConfig{
		Hosts:     topo.NumHosts(),
		LinkBps:   topo.HostLinkBps(),
		Scheduler: basrpt.NewFastBASRPT(basrpt.DefaultV),
		Generator: gen,
		Duration:  2,
	})
	if err != nil {
		return err
	}
	res, err := sim.Run()
	if err != nil {
		return err
	}

	fmt.Printf("scheduler:            %s\n", res.SchedulerName)
	fmt.Printf("flows:                %d arrived, %d completed\n", res.ArrivedFlows, res.CompletedFlows)
	fmt.Printf("global throughput:    %.2f Gbps\n", res.AverageGbps())
	q := res.FCT.Stats(basrpt.ClassQuery)
	bg := res.FCT.Stats(basrpt.ClassBackground)
	fmt.Printf("query FCT:            avg %.3f ms, 99th %.3f ms (%d flows)\n", q.MeanMs, q.P99Ms, q.Count)
	fmt.Printf("background FCT:       avg %.3f ms, 99th %.3f ms (%d flows)\n", bg.MeanMs, bg.P99Ms, bg.Count)
	fmt.Printf("leftover backlog:     %.0f bytes in %d flows\n", res.LeftoverBytes, res.LeftoverFlows)
	return nil
}
