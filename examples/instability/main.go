// Instability walk-through: the paper's Figure 1 example, slot by slot.
// Three flows share two bottleneck links; SRPT strands one packet of the
// long flow while a backlog-aware discipline completes everything in the
// same six slots.
//
//	go run ./examples/instability
package main

import (
	"fmt"
	"log"

	"basrpt"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// First the canned experiment, exactly as the paper draws it.
	res, err := basrpt.RunFig1()
	if err != nil {
		return err
	}
	fmt.Print(res.Render())

	// Then the same example built by hand on the slotted switch model, to
	// show the public API. Ports: 0 = host A, 1 = host D, 2 = host B,
	// 3 = host C.
	fmt.Println("\nhand-built on the slotted switch API:")
	arrivals := []basrpt.FlowArrival{
		{Slot: 0, Src: 0, Dst: 3, Packets: 5}, // f1: A -> C
		{Slot: 0, Src: 0, Dst: 2, Packets: 1}, // f2: A -> B
		{Slot: 1, Src: 1, Dst: 3, Packets: 1}, // f3: D -> C
	}
	for _, scheduler := range []basrpt.Scheduler{
		basrpt.NewSRPT(),
		basrpt.NewFastBASRPT(2),
	} {
		sim, err := basrpt.NewSwitchSim(basrpt.SwitchConfig{
			N:         4,
			Scheduler: scheduler,
			Arrivals:  basrpt.NewScriptedArrivals(arrivals),
		})
		if err != nil {
			return err
		}
		if err := sim.Run(6); err != nil {
			return err
		}
		fmt.Printf("  %-20s completed %d/3 flows, %g packets left after 6 slots\n",
			scheduler.Name(), sim.CompletedFlows(), sim.Backlog())
	}
	return nil
}
