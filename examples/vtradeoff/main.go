// V tradeoff study: sweep the BASRPT weight V at near-saturating load and
// print the Figures 7/8 style tables — larger V buys lower query FCT at
// the cost of a slightly higher stable queue.
//
//	go run ./examples/vtradeoff
package main

import (
	"fmt"
	"log"

	"basrpt"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scale := basrpt.ScaleSmall
	scale.Duration = 2

	res, err := basrpt.RunVSweep(scale, []float64{500, 1000, 2500, 5000, 10000})
	if err != nil {
		return err
	}
	fmt.Print(res.RenderFig7())
	fmt.Println()
	fmt.Print(res.RenderFig8())

	// The theory side of the same knob: Theorem 1 constants on the slotted
	// switch — the delay-gap bound shrinks as 1/V while the backlog bound
	// grows as O(V).
	fmt.Println()
	theorem, err := basrpt.RunTheorem1(4, 0.85, 50000, []float64{1, 8, 64, 512}, basrpt.SeedRun(7))
	if err != nil {
		return err
	}
	fmt.Print(theorem.Render())
	return nil
}
