package basrpt

import (
	"math"
	"strings"
	"testing"

	"basrpt/internal/flow"
	"basrpt/internal/stats"
)

// buildBenchTable fills a VOQ table with a deterministic random flow
// population for the scheduler microbenchmarks.
func buildBenchTable(n, flows int) *flow.Table {
	r := stats.NewRNG(7)
	tab := flow.NewTable(n)
	for i := 0; i < flows; i++ {
		size := 1 + math.Floor(r.Float64()*1e6)
		tab.Add(flow.NewFlow(flow.ID(i+1), r.Intn(n), r.Intn(n), flow.ClassOther, size, 0))
	}
	return tab
}

func TestFacadeSchedulers(t *testing.T) {
	for _, s := range []Scheduler{
		NewSRPT(),
		NewFastBASRPT(2500),
		NewExactBASRPT(100, 0),
		NewMaxWeight(),
		NewFIFOMatch(),
		NewThresholdBacklog(1e6),
	} {
		if s.Name() == "" {
			t.Fatal("empty scheduler name")
		}
	}
	names := SchedulerNames()
	if len(names) < 6 {
		t.Fatalf("registry names = %v", names)
	}
	s, err := NewScheduler("srpt", SchedulerOptions{})
	if err != nil || s.Name() != "srpt" {
		t.Fatalf("NewScheduler = (%v, %v)", s, err)
	}
	if _, err := NewScheduler("nope", SchedulerOptions{}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestFacadeTopologyAndDistributions(t *testing.T) {
	topo, err := NewTopology(PaperTopology())
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumHosts() != 144 {
		t.Fatalf("paper hosts = %d", topo.NumHosts())
	}
	r := NewRNG(1)
	ws := WebSearchSizes()
	dm := DataMiningSizes()
	for i := 0; i < 100; i++ {
		if ws.Sample(r) <= 0 || dm.Sample(r) <= 0 {
			t.Fatal("non-positive sample")
		}
	}
	if ws.Mean() <= QueryBytes {
		t.Fatalf("web-search mean %g should dwarf a query", ws.Mean())
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	topo, err := NewTopology(ScaledTopology(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewMixedWorkload(MixedConfig{
		Topology:          topo,
		Load:              0.5,
		QueryByteFraction: DefaultQueryByteFraction,
		Duration:          0.5,
		Seed:              3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewFabricSim(FabricConfig{
		Hosts:     topo.NumHosts(),
		LinkBps:   topo.HostLinkBps(),
		Scheduler: NewFastBASRPT(DefaultV),
		Generator: gen,
		Duration:  0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedFlows == 0 {
		t.Fatal("no completions")
	}
	if res.FCT.Stats(ClassQuery).Count == 0 {
		t.Fatal("no query FCTs recorded")
	}
}

func TestFacadeSliceWorkloadAndSwitchSim(t *testing.T) {
	gen := NewSliceWorkload([]Arrival{
		{Time: 0, Src: 0, Dst: 1, Size: 100, Class: ClassOther},
	})
	if a, ok := gen.Next(); !ok || a.Size != 100 {
		t.Fatalf("slice workload = (%+v, %v)", a, ok)
	}
	sim, err := NewSwitchSim(SwitchConfig{
		N:         2,
		Scheduler: NewSRPT(),
		Arrivals:  NewScriptedArrivals([]FlowArrival{{Slot: 0, Src: 0, Dst: 1, Packets: 2}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(3); err != nil {
		t.Fatal(err)
	}
	if sim.CompletedFlows() != 1 {
		t.Fatalf("completed = %d", sim.CompletedFlows())
	}
}

func TestFacadeExperimentReexports(t *testing.T) {
	res, err := RunFig1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Render(), "Figure 1") {
		t.Fatal("fig1 render wrong")
	}
	if ScalePaper.Racks != 12 || ScalePaper.Duration != 500 {
		t.Fatalf("ScalePaper = %+v", ScalePaper)
	}
	if DefaultV != 2500 {
		t.Fatalf("DefaultV = %v", DefaultV)
	}
}

// TestFacadeExperimentPassThroughs drives every experiment re-export at
// minimal scale.
func TestFacadeExperimentPassThroughs(t *testing.T) {
	tiny := Scale{Racks: 2, HostsPerRack: 3, Duration: 0.4, Seed: 1}

	if _, err := RunFig2(tiny, 0); err != nil {
		t.Fatalf("RunFig2: %v", err)
	}
	if res, err := RunSaturation(tiny, 0); err != nil || res.Load != 0.95 {
		t.Fatalf("RunSaturation: %v", err)
	}
	if res, err := RunLoadPair(tiny, 0, 0.5); err != nil || res.Load != 0.5 {
		t.Fatalf("RunLoadPair: %v", err)
	}
	if res, err := RunStability(tiny, 0); err != nil || res.Load != 0.92 {
		t.Fatalf("RunStability: %v", err)
	} else if res.RenderStability() == "" {
		t.Fatal("empty stability render")
	}
	if res, err := RunFig6(tiny, 0, []float64{0.4}); err != nil || len(res.Rows) != 1 {
		t.Fatalf("RunFig6: %v", err)
	}
	if res, err := RunVSweep(tiny, []float64{2500}); err != nil || len(res.Rows) != 1 {
		t.Fatalf("RunVSweep: %v", err)
	}
	if res, err := RunTheorem1(3, 0.7, 2000, []float64{4}, SeedRun(1)); err != nil || len(res.Rows) != 1 {
		t.Fatalf("RunTheorem1: %v", err)
	}
	if res, err := RunDTMC(4, 0); err != nil || res.Shortest == nil {
		t.Fatalf("RunDTMC: %v", err)
	}
	if res, err := RunExactVsFast(3, 10, DefaultV, SeedRun(1)); err != nil || res.Trials != 10 {
		t.Fatalf("RunExactVsFast: %v", err)
	}
	if res, err := RunDistributed(4, 10, DefaultV, []int{0}, SeedRun(1)); err != nil || res.Rows[0].Agreement != 1 {
		t.Fatalf("RunDistributed: %v", err)
	}
	if res, err := RunNoise(tiny, 0, 0.5, []float64{0.5}); err != nil || len(res.Rows) != 1 {
		t.Fatalf("RunNoise: %v", err)
	}
}
