// Package basrpt is a Go reproduction of "Backlog-Aware SRPT Flow
// Scheduling in Data Center Networks" (Zhang, Ren, Shu — ICDCS 2016): the
// BASRPT and fast BASRPT scheduling disciplines, the SRPT/MaxWeight/FIFO
// baselines, a continuous-time flow-level data-center fabric simulator, a
// slotted input-queued switch model, the paper's query+background traffic
// generator, and runners that regenerate every table and figure of the
// paper's evaluation.
//
// This root package is the public API: it re-exports the curated surface
// of the internal packages. Quick start:
//
//	topo, _ := basrpt.NewTopology(basrpt.ScaledTopology(2, 4))
//	gen, _ := basrpt.NewMixedWorkload(basrpt.MixedConfig{
//		Topology:          topo,
//		Load:              0.8,
//		QueryByteFraction: basrpt.DefaultQueryByteFraction,
//		Duration:          2,
//		Seed:              1,
//	})
//	sim, _ := basrpt.NewFabricSim(basrpt.FabricConfig{
//		Hosts:     topo.NumHosts(),
//		LinkBps:   topo.HostLinkBps(),
//		Scheduler: basrpt.NewFastBASRPT(2500),
//		Generator: gen,
//		Duration:  2,
//	})
//	res, _ := sim.Run()
//	fmt.Println(res.FCT.Stats(basrpt.ClassQuery).MeanMs)
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// system inventory.
package basrpt

import (
	"io"

	"basrpt/internal/core"
	"basrpt/internal/fabricsim"
	"basrpt/internal/faults"
	"basrpt/internal/flow"
	"basrpt/internal/metrics"
	"basrpt/internal/obs"
	"basrpt/internal/ops"
	"basrpt/internal/runner"
	"basrpt/internal/sched"
	"basrpt/internal/stats"
	"basrpt/internal/switchsim"
	"basrpt/internal/topology"
	"basrpt/internal/trace"
	"basrpt/internal/workload"
)

// Scheduling disciplines (see internal/sched for the algorithmic details).
type (
	// Scheduler selects the set of flows to transmit after every arrival
	// and completion; decisions are crossbar matchings.
	Scheduler = sched.Scheduler
	// SchedulerOptions parameterizes NewScheduler.
	SchedulerOptions = sched.Options
)

// NewSRPT returns the SRPT baseline (pFabric-style greedy shortest
// remaining size first).
func NewSRPT() Scheduler { return sched.NewSRPT() }

// NewFastBASRPT returns the paper's Algorithm 1 with tradeoff weight v:
// flows are selected in non-decreasing order of (v/N)·remaining − backlog.
func NewFastBASRPT(v float64) Scheduler { return sched.NewFastBASRPT(v) }

// NewExactBASRPT returns the exhaustive drift-plus-penalty minimizer
// (Section IV-A); it is factorial in ports and panics beyond maxPorts
// (0 selects the default limit of 8).
func NewExactBASRPT(v float64, maxPorts int) Scheduler { return sched.NewExactBASRPT(v, maxPorts) }

// NewMaxWeight returns longest-queue-first — the V = 0 limit of BASRPT.
func NewMaxWeight() Scheduler { return sched.NewMaxWeight() }

// NewFIFOMatch returns oldest-flow-first matching.
func NewFIFOMatch() Scheduler { return sched.NewFIFOMatch() }

// NewThresholdBacklog returns the Figure 2 motivation strategy: VOQs whose
// backlog exceeds threshold jump ahead of the SRPT order.
func NewThresholdBacklog(threshold float64) Scheduler { return sched.NewThresholdBacklog(threshold) }

// NewScheduler builds a discipline by registry name ("srpt",
// "fast-basrpt", "exact-basrpt", "maxweight", "fifo", "threshold",
// "random").
func NewScheduler(name string, opts SchedulerOptions) (Scheduler, error) {
	return sched.New(name, opts)
}

// SchedulerNames lists the registry names accepted by NewScheduler.
func SchedulerNames() []string { return sched.Names() }

// Flow model.
type (
	// Flow is one transfer in the fabric.
	Flow = flow.Flow
	// FlowClass labels flows for per-class metrics.
	FlowClass = flow.Class
)

// Flow classes.
const (
	ClassQuery      = flow.ClassQuery
	ClassBackground = flow.ClassBackground
	ClassOther      = flow.ClassOther
)

// Topology (the multi-rooted tree of the paper's Figure 4).
type (
	// Topology is a validated fabric.
	Topology = topology.Topology
	// TopologyConfig describes racks, hosts and link speeds.
	TopologyConfig = topology.Config
)

// PaperTopology returns the evaluation fabric: 144 hosts, 12 racks,
// 3 cores, 10G edge links.
func PaperTopology() TopologyConfig { return topology.Paper() }

// ScaledTopology shrinks the paper fabric while staying non-blocking.
func ScaledTopology(racks, hostsPerRack int) TopologyConfig {
	return topology.Scaled(racks, hostsPerRack)
}

// NewTopology validates and builds a topology.
func NewTopology(cfg TopologyConfig) (*Topology, error) { return topology.New(cfg) }

// Workload generation (Section V-A traffic).
type (
	// Arrival is one generated flow arrival.
	Arrival = workload.Arrival
	// Generator yields arrivals in time order.
	Generator = workload.Generator
	// MixedConfig parameterizes the query+background mix.
	MixedConfig = workload.MixedConfig
	// IncastConfig parameterizes the partition/aggregate (incast) pattern.
	IncastConfig = workload.IncastConfig
)

// DefaultQueryByteFraction is the query/background byte split used by the
// experiment harness (the paper does not publish one).
const DefaultQueryByteFraction = workload.DefaultQueryByteFraction

// QueryBytes is the paper's fixed 20KB query size.
const QueryBytes = workload.QueryBytes

// NewMixedWorkload builds the two-class Poisson traffic generator.
func NewMixedWorkload(cfg MixedConfig) (Generator, error) { return workload.NewMixed(cfg) }

// NewSliceWorkload replays a fixed arrival list.
func NewSliceWorkload(arrivals []Arrival) Generator { return workload.NewSliceGenerator(arrivals) }

// NewIncastWorkload builds the partition/aggregate (incast) generator the
// paper's introduction motivates: per job, Fanout fixed-size responses
// converge on one aggregator host.
func NewIncastWorkload(cfg IncastConfig) (Generator, error) { return workload.NewIncast(cfg) }

// Randomness and distributions.
type (
	// RNG is the deterministic generator used throughout the simulators.
	RNG = stats.RNG
	// Sampler draws values from a distribution.
	Sampler = stats.Sampler
)

// NewRNG returns a seeded deterministic generator.
func NewRNG(seed uint64) *RNG { return stats.NewRNG(seed) }

// WebSearchSizes returns the DCTCP web-search flow-size distribution
// (bytes) the paper cites for background flows.
func WebSearchSizes() Sampler { return workload.WebSearchBytes() }

// DataMiningSizes returns the VL2 data-mining flow-size distribution
// (bytes).
func DataMiningSizes() Sampler { return workload.DataMiningBytes() }

// Fabric simulator (the paper's Java flow-level simulator rebuilt).
type (
	// FabricConfig parameterizes a run.
	FabricConfig = fabricsim.Config
	// FabricResult carries FCTs, throughput and queue series.
	FabricResult = fabricsim.Result
	// FabricSim is one simulation instance.
	FabricSim = fabricsim.Sim
	// FabricWatchdog bounds a run (backlog divergence, wall clock).
	FabricWatchdog = fabricsim.Watchdog
	// FabricDiagnosis explains a watchdog-truncated run.
	FabricDiagnosis = fabricsim.Diagnosis
	// ShardConfig parameterizes a sharded fabric run (RunShardedFabric):
	// one cell per rack, conservative-lookahead windows, two determinism
	// families keyed on Shards (see ARCHITECTURE.md "Sharded fabric").
	ShardConfig = fabricsim.ShardConfig
	// ShardImbalance is the decomposed engine's post-run wall-clock
	// attribution report (FabricResult.Imbalance): per-cell busy and
	// barrier-wait time, slowest-cell attribution, and the skew ratio.
	// Wall-clock plane only — never part of deterministic digests.
	ShardImbalance = fabricsim.ShardImbalance
	// RunProgress is the centralized engine's sample-tick heartbeat
	// payload (FabricConfig.OnProgress / ShardConfig.OnProgress).
	RunProgress = fabricsim.RunProgress
	// ShardProgress is the decomposed engine's per-window heartbeat
	// payload (ShardConfig.OnWindow).
	ShardProgress = fabricsim.ShardProgress
)

// NewFabricSim validates the configuration and prepares a run.
func NewFabricSim(cfg FabricConfig) (*FabricSim, error) { return fabricsim.New(cfg) }

// ResumeFabricSim reconstructs a simulator from a checkpoint (see
// FabricConfig.CheckpointEvery) and rewinds it to the captured instant;
// Run then continues bit-for-bit — same Result, same trace — as the
// uninterrupted run would have.
func ResumeFabricSim(cfg FabricConfig, data []byte) (*FabricSim, error) {
	return fabricsim.Resume(cfg, data)
}

// ErrStopAfterCheckpoint, returned from a FabricConfig.CheckpointSink,
// halts the run cleanly right after the checkpoint is persisted: Run
// returns a "checkpoint-stop" diagnosis instead of an error.
var ErrStopAfterCheckpoint = fabricsim.ErrStopAfterCheckpoint

// RunShardedFabric executes one fabric run on the sharded engine.
// Shards == 1 selects the centralized simulator (byte-identical to
// NewFabricSim + Run); Shards >= 2 selects the rack-decomposed engine,
// whose result is byte-identical across every shard count >= 2 and any
// GOMAXPROCS. At 4k+ hosts the decomposed engine's per-rack matchings
// beat the centralized fabric-global matching by orders of magnitude
// (see `make bench-shard`).
func RunShardedFabric(cfg ShardConfig) (*FabricResult, error) { return fabricsim.RunShard(cfg) }

// ErrShardConfig is the sentinel wrapped by every ShardConfig
// validation failure.
var ErrShardConfig = fabricsim.ErrShardConfig

// ErrShardUnsupported marks features the decomposed (Shards >= 2)
// engine rejects — checkpointing runs sharded state through the
// centralized engine instead (see ARCHITECTURE.md "Sharded fabric").
var ErrShardUnsupported = fabricsim.ErrShardUnsupported

// Fault injection (deterministic, seed-driven; see internal/faults).
type (
	// FaultParams parameterizes fault-schedule generation.
	FaultParams = faults.Params
	// FaultSchedule is a materialized fault plan, replayable across
	// schedulers.
	FaultSchedule = faults.Schedule
	// FaultInjector answers the simulators' runtime fault queries.
	FaultInjector = faults.Injector
	// LinkFault is one access-link down/degraded window.
	LinkFault = faults.LinkFault
	// FaultWindow is one half-open fault interval.
	FaultWindow = faults.Window
	// FaultCounters tallies the fault events a run saw.
	FaultCounters = metrics.FaultCounters
)

// GenerateFaults derives a deterministic fault schedule from params: the
// same params yield a byte-identical schedule.
func GenerateFaults(p FaultParams) (*FaultSchedule, error) { return faults.Generate(p) }

// NewFaultInjector prepares a schedule for injection. Build one fresh
// injector per run so runs sharing a schedule see identical loss draws.
func NewFaultInjector(s *FaultSchedule) *FaultInjector { return faults.NewInjector(s) }

// Slotted switch model (paper Eq. 1).
type (
	// SwitchConfig parameterizes the slotted input-queued switch.
	SwitchConfig = switchsim.Config
	// SwitchSim is one slotted simulation.
	SwitchSim = switchsim.Sim
	// FlowArrival is a scripted slotted-model arrival.
	FlowArrival = switchsim.FlowArrival
)

// NewSwitchSim builds a slotted-switch simulation.
func NewSwitchSim(cfg SwitchConfig) (*SwitchSim, error) { return switchsim.New(cfg) }

// NewScriptedArrivals replays fixed slotted arrivals.
func NewScriptedArrivals(arrivals []FlowArrival) switchsim.ArrivalProcess {
	return switchsim.NewScriptedArrivals(arrivals)
}

// Metrics.
type (
	// FCTStats summarizes one flow class in milliseconds.
	FCTStats = metrics.ClassStats
	// Series is a time-indexed sample sequence.
	Series = metrics.Series
)

// Experiments (the paper's tables and figures; see DESIGN.md §3).
type (
	// Scale selects experiment fidelity (paper scale vs reduced).
	Scale = core.Scale
	// Fig1Result is the 3-flow instability example.
	Fig1Result = core.Fig1Result
	// Fig2Result is the queue-length motivation experiment.
	Fig2Result = core.Fig2Result
	// SaturationResult backs Table I and Figure 5.
	SaturationResult = core.SaturationResult
	// Fig6Result is the load sweep.
	Fig6Result = core.Fig6Result
	// VSweepResult backs Figures 7 and 8.
	VSweepResult = core.VSweepResult
	// TheoremResult validates Theorem 1 on the slotted switch.
	TheoremResult = core.TheoremResult
	// DTMCResult is the tiny-switch stationary analysis.
	DTMCResult = core.DTMCResult
	// AblationResult compares exact and fast BASRPT decisions.
	AblationResult = core.AblationResult
	// DistributedResult measures the request/grant emulation of fast
	// BASRPT against the centralized decisions.
	DistributedResult = core.DistributedResult
	// NoiseResult sweeps flow-size estimation error.
	NoiseResult = core.NoiseResult
	// IncastResult compares schedulers under the partition/aggregate
	// pattern.
	IncastResult = core.IncastResult
	// FaultsResult compares SRPT and fast BASRPT under identical injected
	// fault schedules.
	FaultsResult = core.FaultsResult
	// SchedBenchResult compares the incremental scheduling core against
	// the from-scratch baseline on byte-identical runs.
	SchedBenchResult = core.SchedBenchResult
	// SchedBenchRow is one discipline's old-vs-new decision-rate row.
	SchedBenchRow = core.SchedBenchRow
	// ObsBenchResult quantifies the observability layer's cost (the
	// BENCH_obs.json shape) and trace determinism.
	ObsBenchResult = core.ObsBenchResult
	// ObsBudget is the checked-in observability ceiling the CI gate
	// enforces over BENCH_obs.json: the maximum disabled-probe overhead
	// percentage plus a trace-determinism requirement.
	ObsBudget = core.ObsBudget
	// AllocBenchResult reports the hot path's steady-state allocator
	// pressure (the BENCH_alloc.json shape): bytes/allocs per decision
	// and GC cycles per million decisions, pooled vs non-pooled.
	AllocBenchResult = core.AllocBenchResult
	// AllocBenchRow is one discipline's pooled-vs-baseline allocation row.
	AllocBenchRow = core.AllocBenchRow
	// AllocBudget is the checked-in per-decision allocation ceiling the CI
	// gate enforces over BENCH_alloc.json.
	AllocBudget = core.AllocBudget
	// ShardBenchResult reports scheduling throughput across shard counts
	// (the BENCH_shard.json shape): the centralized engine versus the
	// rack-decomposed engine at growing shard counts.
	ShardBenchResult = core.ShardBenchResult
	// ShardBenchRow is one shard-count arm of the scaling benchmark.
	ShardBenchRow = core.ShardBenchRow
	// ShardBudget is the checked-in shard-scaling floor the CI gate
	// enforces over BENCH_shard.json.
	ShardBudget = core.ShardBudget
	// ShardBenchOptions tunes RunShardBench: load, widest arm,
	// centralized-horizon cap, and the barrier batch forwarded to the
	// decomposed arms. The zero value selects every default.
	ShardBenchOptions = core.ShardBenchOptions
)

// Observability (see internal/obs): a deterministic instrumentation
// registry plus a sim-time event tracer with a flight-recorder ring. A nil
// *Obs (and every handle resolved from one) is a near-zero no-op, so
// instrumented code needs no "is observability on" branches.
type (
	// Obs is the per-run instrumentation handle; set FabricConfig.Obs (or
	// SwitchConfig.Obs) to attach it.
	Obs = obs.Obs
	// ObsOptions parameterizes NewObs (ring capacity, wall-clock stamping,
	// event sink).
	ObsOptions = obs.Options
	// ObsEvent is one sim-time-stamped trace event.
	ObsEvent = obs.Event
	// ObsSnapshot is a point-in-time copy of every registered instrument;
	// FabricResult.Obs carries one per run.
	ObsSnapshot = obs.Snapshot
	// ObsRegistry holds named counters, gauges, and histograms.
	ObsRegistry = obs.Registry
	// ObsEventSink receives every emitted event in order (the JSONL trace
	// writer satisfies this).
	ObsEventSink = obs.EventSink
	// TraceHeader is the schema-versioned first line of a JSONL trace.
	TraceHeader = trace.TraceHeader
	// TraceWriter streams events as JSONL; attach via ObsOptions.Sink.
	TraceWriter = trace.EventWriter
	// Timeline collects wall-clock execution spans from a decomposed
	// sharded run (ShardConfig.Timeline) for Chrome trace_event export.
	Timeline = obs.Timeline
	// TimelineSpan is one wall-clock execution span on a timeline track.
	TimelineSpan = obs.TimelineSpan
)

// TimelineCoordinator is the TimelineSpan.Track value for coordinator
// work (fold, route) as opposed to per-cell work.
const TimelineCoordinator = obs.TimelineCoordinator

// NewTimeline returns an empty span container; attach it via
// ShardConfig.Timeline and export with Timeline.WriteChromeTrace.
func NewTimeline() *Timeline { return obs.NewTimeline() }

// IsWallClockMetric reports whether an instrument name belongs to the
// wall-clock observability plane ("wall." or "runtime." prefixes), which
// deterministic digests and traces exclude.
func IsWallClockMetric(name string) bool { return obs.IsWallClock(name) }

// TraceSchema identifies the JSONL trace format this build writes and
// ReadTrace accepts.
const TraceSchema = trace.TraceSchema

// NewObs builds an enabled instrumentation handle. A nil *Obs is the
// disabled layer — every probe through it is a pointer comparison.
func NewObs(o ObsOptions) *Obs { return obs.New(o) }

// NewTraceWriter starts a JSONL trace on w by writing the schema-versioned
// header; pass the writer as ObsOptions.Sink to stream a run's events.
func NewTraceWriter(w io.Writer, h TraceHeader) (*TraceWriter, error) {
	return trace.NewEventWriter(w, h)
}

// NewTraceContinuationWriter streams events as JSONL with no header line
// — for continuing the trace of a checkpointed run, whose file already
// holds one. Concatenating the original partial trace with a continuation
// yields a single trace byte-identical to the uninterrupted run's.
func NewTraceContinuationWriter(w io.Writer) *TraceWriter {
	return trace.NewContinuationWriter(w)
}

// ReadTrace parses a JSONL trace, validating the schema and the event
// sequence; on corruption it returns the events salvaged before the bad
// line alongside the error.
func ReadTrace(r io.Reader) (TraceHeader, []ObsEvent, error) { return trace.ReadTrace(r) }

// Multi-seed experiment running (see internal/runner).
type (
	// Run is the run context the non-fabric experiment entry points take:
	// the primary seed plus auxiliary seeds derived from it.
	Run = core.Run
	// MultiConfig shapes a multi-seed run: replicate count, worker count,
	// and the root seed the per-replicate seeds derive from.
	MultiConfig = runner.Config
	// MultiAggregate carries per-metric mean, stddev, and 95% confidence
	// intervals across the replicates.
	MultiAggregate = runner.Aggregate
	// MultiTask is one independently repeatable simulation unit.
	MultiTask = runner.Task
	// MultiSample is the named metric values one task run produced.
	MultiSample = runner.Sample
	// MultiProgress is one lifecycle notification from the multi-seed
	// runner (MultiConfig.OnProgress): unit identity, phase, and overall
	// completion count.
	MultiProgress = runner.Progress
	// MultiPhase labels where a unit is in its lifecycle (start, resume,
	// done, failed).
	MultiPhase = runner.Phase
)

// SeedRun wraps a bare primary seed in a Run context.
func SeedRun(seed uint64) Run { return core.SeedRun(seed) }

// RunMulti executes the named experiment (any -exp id except the
// long-horizon stability showcase) across cfg.Seeds independent seeds on
// up to cfg.Parallel workers, aggregating every headline metric with a
// 95% confidence interval. The aggregate is byte-identical regardless of
// worker count.
func RunMulti(exp string, scale Scale, v float64, cfg MultiConfig) (*MultiAggregate, error) {
	return core.RunMulti(exp, scale, v, cfg)
}

// RunTasks fans caller-supplied tasks across the worker pool — the
// generic form of RunMulti for custom experiments.
func RunTasks(cfg MultiConfig, tasks []MultiTask) (*MultiAggregate, error) {
	return runner.Run(cfg, tasks)
}

// DeriveSeed maps (root, stream) to the deterministic per-replicate seed
// the multi-seed runner uses.
func DeriveSeed(root uint64, stream int) uint64 { return runner.DeriveSeed(root, stream) }

// Live ops endpoint (see internal/ops): the wall-clock plane's network
// face — Prometheus /metrics, /progress JSON, and pprof over a plain
// HTTP listener. Publish-only: the simulation pushes copies in, nothing
// is ever read back, so determinism is untouched.
type (
	// OpsServer serves /metrics, /progress, and /debug/pprof for a
	// running simulation or experiment sweep.
	OpsServer = ops.Server
	// OpsRunState is the live position of a single fabric run as
	// published to an OpsServer.
	OpsRunState = ops.RunState
	// OpsShardState is the decomposed engine's pool-level position —
	// barrier cadence, worker count, per-cell busy/wait — as published
	// to an OpsServer (rendered as the basrpt_shard_* metric family).
	OpsShardState = ops.ShardState
	// OpsSeedState is one experiment unit's lifecycle state as exposed
	// by the /progress endpoint.
	OpsSeedState = ops.SeedState
)

// NewOpsServer starts the ops HTTP listener on addr (use "127.0.0.1:0"
// for an ephemeral port; OpsServer.URL reports the bound address). Close
// it when the run finishes.
func NewOpsServer(addr string) (*OpsServer, error) { return ops.NewServer(addr) }

// Predefined experiment scales.
var (
	ScaleSmall  = core.ScaleSmall
	ScaleMedium = core.ScaleMedium
	ScalePaper  = core.ScalePaper
)

// DefaultV is the paper's demonstration tradeoff weight (2500).
const DefaultV = core.DefaultV

// GrowthThreshold is the growth ratio above which a queue series is
// classified as macro-scale growing (see Series.Trend).
const GrowthThreshold = core.GrowthThreshold

// RunFig1 reproduces Figure 1.
func RunFig1() (*Fig1Result, error) { return core.RunFig1() }

// RunFig2 reproduces Figure 2 (threshold <= 0 selects the default).
func RunFig2(scale Scale, threshold float64) (*Fig2Result, error) {
	return core.RunFig2(scale, threshold)
}

// RunSaturation reproduces the near-capacity run behind Table I and
// Figure 5 (v <= 0 selects DefaultV).
func RunSaturation(scale Scale, v float64) (*SaturationResult, error) {
	return core.RunSaturation(scale, v)
}

// RunLoadPair runs SRPT and fast BASRPT head-to-head on an identical
// arrival stream at an arbitrary load.
func RunLoadPair(scale Scale, v, load float64) (*SaturationResult, error) {
	return core.RunLoadPair(scale, v, load)
}

// RunStability is the reduced-scale stability showcase behind Figures 2
// and 5(b): SRPT's queue grows while fast BASRPT's stabilizes. Use
// horizons of 40+ simulated seconds.
func RunStability(scale Scale, v float64) (*SaturationResult, error) {
	return core.RunStability(scale, v)
}

// RunDistributed measures how closely the request/grant distributed
// emulation of fast BASRPT tracks the centralized decisions per
// arbitration-round budget.
func RunDistributed(n, trials int, v float64, rounds []int, run Run) (*DistributedResult, error) {
	return core.RunDistributed(n, trials, v, rounds, run)
}

// RunNoise sweeps flow-size estimation error levels for fast BASRPT.
func RunNoise(scale Scale, v, load float64, levels []float64) (*NoiseResult, error) {
	return core.RunNoise(scale, v, load, levels)
}

// RunIncast compares SRPT and fast BASRPT under the partition/aggregate
// (incast) pattern.
func RunIncast(scale Scale, v float64, fanout int, jobsPerSecond, backgroundLoad float64) (*IncastResult, error) {
	return core.RunIncast(scale, v, fanout, jobsPerSecond, backgroundLoad)
}

// RunSchedBench benchmarks the incremental scheduling core against the
// from-scratch baseline: every index-routed discipline runs twice on the
// identical arrival stream and reports measured decisions/sec for both
// arms (load <= 0 selects the 0.8 default).
func RunSchedBench(scale Scale, load float64) (*SchedBenchResult, error) {
	return core.RunSchedBench(scale, load)
}

// RunObsBench measures the observability layer's disabled-path overhead
// against the per-decision scheduling cost and verifies that two traced
// fixed-seed runs emit byte-identical JSONL (load <= 0 selects the 0.8
// default).
func RunObsBench(scale Scale, load float64) (*ObsBenchResult, error) {
	return core.RunObsBench(scale, load)
}

// RunAllocBench measures the steady-state allocator pressure of the
// scheduling hot path: SRPT and fast BASRPT each run twice on the
// identical arrival stream — flow pooling on (default) and off — and the
// report carries bytes/allocs per decision and GC cycles per million
// decisions for both arms (load <= 0 selects the 0.8 default). The two
// arms must produce byte-identical Results or the bench errors.
func RunAllocBench(scale Scale, load float64) (*AllocBenchResult, error) {
	return core.RunAllocBench(scale, load)
}

// RunShardBench measures scheduling throughput across shard counts on
// one topology: the centralized engine at 1 shard (optionally on a
// capped horizon — see ShardBenchOptions.CentralizedDuration), then
// rack-decomposed arms doubling from 2 up to ShardBenchOptions.MaxShards
// (default 4). Every decomposed arm must report an identical
// deterministic digest or the bench errors, so each run doubles as a
// grouping-invariance check at scale.
func RunShardBench(scale Scale, opts ShardBenchOptions) (*ShardBenchResult, error) {
	return core.RunShardBench(scale, opts)
}

// RunFaults compares SRPT and fast BASRPT under byte-identical workloads
// and fault schedules (link faults plus a scheduler outage), reporting
// per-class FCTs and backlog recovery time. Deterministic per
// run.FaultSeed.
func RunFaults(scale Scale, v float64, run Run) (*FaultsResult, error) {
	return core.RunFaults(scale, v, run)
}

// RunFig6 reproduces the Figure 6 load sweep (nil loads selects the
// paper's 10%–80%).
func RunFig6(scale Scale, v float64, loads []float64) (*Fig6Result, error) {
	return core.RunFig6(scale, v, loads)
}

// RunVSweep reproduces Figures 7 and 8 (nil selects the paper's V range).
func RunVSweep(scale Scale, vs []float64) (*VSweepResult, error) {
	return core.RunVSweep(scale, vs)
}

// RunTheorem1 validates Theorem 1 on an n-port slotted switch.
func RunTheorem1(n int, load float64, slots int64, vs []float64, run Run) (*TheoremResult, error) {
	return core.RunTheorem1(n, load, slots, vs, run)
}

// RunDTMC runs the tiny-switch stationary-distribution comparison.
func RunDTMC(capacity int, v float64) (*DTMCResult, error) { return core.RunDTMC(capacity, v) }

// RunExactVsFast measures the exact-vs-fast decision gap.
func RunExactVsFast(n, trials int, v float64, run Run) (*AblationResult, error) {
	return core.RunExactVsFast(n, trials, v, run)
}
